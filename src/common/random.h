// Deterministic pseudo-random number generation for synthetic workloads and
// Gibbs sampling.
//
// The engine is xoshiro256++ seeded via splitmix64, giving reproducible
// streams across platforms (std::mt19937 distributions are not guaranteed to
// be identical across standard libraries, so all distributions here are
// hand-rolled).
#ifndef FUSER_COMMON_RANDOM_H_
#define FUSER_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fuser {

/// xoshiro256++ generator; cheap to copy, deterministic for a given seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Standard normal via Box-Muller (no caching; stateless across calls).
  double NextGaussian();

  /// Gamma(shape, scale=1) via Marsaglia-Tsang; shape > 0.
  double NextGamma(double shape);

  /// Beta(a, b) via two gamma draws; a, b > 0.
  double NextBeta(double a, double b);

  /// Returns k distinct indices drawn uniformly from [0, n) (k <= n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent child generator (for per-worker streams).
  Rng Split();

 private:
  uint64_t s_[4];
};

}  // namespace fuser

#endif  // FUSER_COMMON_RANDOM_H_
