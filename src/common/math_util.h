// Numeric helpers for probabilistic computations.
#ifndef FUSER_COMMON_MATH_UTIL_H_
#define FUSER_COMMON_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace fuser {

/// Probabilities are clamped into [kProbEpsilon, 1 - kProbEpsilon] before
/// logs/ratios so that degenerate estimates (0 or 1) cannot produce
/// infinities.
inline constexpr double kProbEpsilon = 1e-9;

inline double ClampProb(double p) {
  return std::clamp(p, kProbEpsilon, 1.0 - kProbEpsilon);
}

/// Clamps into the closed unit interval (for quantities that may legally be
/// exactly 0 or 1, such as final posteriors).
inline double ClampUnit(double p) { return std::clamp(p, 0.0, 1.0); }

/// log(p) after clamping away from zero.
inline double SafeLog(double p) { return std::log(ClampProb(p)); }

/// Numerically stable log(exp(a) + exp(b)).
inline double LogAddExp(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  double m = std::max(a, b);
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

/// Posterior from log-odds contribution: given mu = Pr(O|t)/Pr(O|~t) in log
/// space and prior alpha, returns 1 / (1 + (1-alpha)/alpha * exp(-log_mu)).
double PosteriorFromLogMu(double log_mu, double alpha);

/// Same as PosteriorFromLogMu but with mu in linear space; mu <= 0 maps to
/// probability 0.
double PosteriorFromMu(double mu, double alpha);

/// Harmonic mean of precision and recall; 0 when both are 0.
inline double F1Score(double precision, double recall) {
  double denom = precision + recall;
  if (denom <= 0.0) return 0.0;
  return 2.0 * precision * recall / denom;
}

/// True when |a - b| <= tol (absolute tolerance).
inline bool NearlyEqual(double a, double b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol;
}

/// Mean of v; 0 for empty input.
double Mean(const std::vector<double>& v);

/// Sample standard deviation of v; 0 for fewer than two elements.
double StdDev(const std::vector<double>& v);

}  // namespace fuser

#endif  // FUSER_COMMON_MATH_UTIL_H_
