// Span<T>: a non-owning view of a contiguous array.
//
// The columnar Dataset returns its provider / scope / domain rows as spans
// into CSR pool storage (owned or mmap-attached) instead of const
// references to per-row std::vectors. Spans compare element-wise against
// vectors so existing EXPECT_EQ-style assertions keep working.
#ifndef FUSER_COMMON_SPAN_H_
#define FUSER_COMMON_SPAN_H_

#include <cstddef>
#include <ostream>
#include <vector>

namespace fuser {

template <typename T>
class Span {
 public:
  using value_type = T;
  using const_iterator = const T*;

  constexpr Span() = default;
  constexpr Span(const T* data, size_t size) : data_(data), size_(size) {}
  Span(const std::vector<T>& v) : data_(v.data()), size_(v.size()) {}

  constexpr const T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  constexpr const T& operator[](size_t i) const { return data_[i]; }
  constexpr const T& front() const { return data_[0]; }
  constexpr const T& back() const { return data_[size_ - 1]; }

  constexpr const T* begin() const { return data_; }
  constexpr const T* end() const { return data_ + size_; }

  std::vector<T> ToVector() const { return std::vector<T>(begin(), end()); }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

template <typename T>
bool operator==(Span<T> a, Span<T> b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

template <typename T>
bool operator!=(Span<T> a, Span<T> b) {
  return !(a == b);
}

template <typename T>
bool operator==(Span<T> a, const std::vector<T>& b) {
  return a == Span<T>(b);
}

template <typename T>
bool operator==(const std::vector<T>& a, Span<T> b) {
  return Span<T>(a) == b;
}

template <typename T>
bool operator!=(Span<T> a, const std::vector<T>& b) {
  return !(a == b);
}

template <typename T>
bool operator!=(const std::vector<T>& a, Span<T> b) {
  return !(a == b);
}

/// gtest-friendly printing.
template <typename T>
std::ostream& operator<<(std::ostream& os, Span<T> s) {
  os << "[";
  for (size_t i = 0; i < s.size(); ++i) {
    if (i != 0) os << ", ";
    os << s[i];
  }
  return os << "]";
}

}  // namespace fuser

#endif  // FUSER_COMMON_SPAN_H_
