// Runtime-dispatched SIMD kernels for the integer hot loops.
//
// Three kernels sit under every scoring and discovery hot path:
//
//  * and_count / and_count3: masked AND + popcount over bitset word spans
//    (the joint-count loops in pairwise correlation discovery and the
//    sketch estimator);
//  * transpose_bit_columns: the 64x64 bit-matrix transpose behind the
//    word-parallel pattern grouping (k source bitset words in, 64
//    per-triple provider masks out);
//  * gather_doubles: the pattern-posterior table gather in
//    CombinePatternScores (scores[t] = table[pattern_of[t]]).
//
// Each kernel exists at every dispatch level. The scalar implementation is
// the byte-identity oracle: all levels are exact integer (or exact-copy)
// algorithms, so outputs are bit-identical across levels — tests compare
// every supported level against scalar, and the bench-side
// `scores_identical` gates hold on both AVX2 and forced-scalar runs.
//
// Dispatch is resolved once per process from cpuid
// (__builtin_cpu_supports("avx2")); setting the environment variable
// FUSER_DISABLE_AVX2=1 before the first kernel call forces the scalar
// level (CI runs the whole suite once this way). AVX2 code is compiled
// with per-function target attributes, so no global -mavx2 flag is needed
// and the binary stays runnable on non-AVX2 machines.
//
// This header deliberately has no repo dependencies beyond the standard
// library so low-level headers (bitset.h) can include it without cycles.
#ifndef FUSER_COMMON_SIMD_H_
#define FUSER_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace fuser {
namespace simd {

/// Dispatch levels, ordered from baseline to widest. kScalar is always
/// supported.
enum class Level : int {
  kScalar = 0,
  kAvx2 = 1,
};

/// Human-readable level name ("scalar", "avx2") for logs and bench JSON.
const char* LevelName(Level level);

/// Whether `level` can run on this machine (and is not disabled via
/// FUSER_DISABLE_AVX2). kScalar always returns true.
bool LevelSupported(Level level);

/// The highest supported level; resolved once (thread-safe) on first call.
Level ActiveLevel();

/// The kernel table of one dispatch level. All function pointers are
/// non-null at every level.
struct Kernels {
  /// popcount(a[i] & b[i]) summed over i in [0, n).
  uint64_t (*and_count)(const uint64_t* a, const uint64_t* b, size_t n);
  /// popcount(a[i] & b[i] & c[i]) summed over i in [0, n).
  uint64_t (*and_count3)(const uint64_t* a, const uint64_t* b,
                         const uint64_t* c, size_t n);
  /// Transposes `k` row words (k <= 64) into 64 column masks: bit i of
  /// cols[j] = bit j of rows[i] for i < k; bits >= k are zero. Exact
  /// same contract as fuser::TransposeBitColumns (bit_util.h), which is
  /// the scalar implementation.
  void (*transpose_bit_columns)(const uint64_t* rows, size_t k,
                                uint64_t* cols);
  /// out[i] = table[idx[i]] for i in [0, n). Indices must be in range.
  void (*gather_doubles)(const double* table, const size_t* idx, size_t n,
                         double* out);
};

/// Kernel table of a specific level; `level` must be supported (checked).
/// Tests use this to run every supported level against the scalar oracle.
const Kernels& KernelsFor(Level level);

/// Kernel table of ActiveLevel(); the hot paths call through this.
const Kernels& ActiveKernels();

// ---- Dispatched conveniences (what call sites actually use). ----

inline uint64_t AndCountWords(const uint64_t* a, const uint64_t* b,
                              size_t n) {
  return ActiveKernels().and_count(a, b, n);
}

inline uint64_t AndCountWords3(const uint64_t* a, const uint64_t* b,
                               const uint64_t* c, size_t n) {
  return ActiveKernels().and_count3(a, b, c, n);
}

inline void TransposeBitColumns(const uint64_t* rows, size_t k,
                                uint64_t* cols) {
  ActiveKernels().transpose_bit_columns(rows, k, cols);
}

inline void GatherDoubles(const double* table, const size_t* idx, size_t n,
                          double* out) {
  ActiveKernels().gather_doubles(table, idx, n, out);
}

}  // namespace simd
}  // namespace fuser

#endif  // FUSER_COMMON_SIMD_H_
