// Column<T> and CsrTable<T>: flat columnar storage with copy-on-write
// attach semantics.
//
// Both containers have two storage states:
//   * owned  — a std::vector holds the data (the normal mutable state);
//   * borrowed — the data pointer aims into an external image (an mmap'd
//     snapshot section). Every mutator promotes to owned first
//     (EnsureOwned copies the borrowed bytes), so attaching a snapshot is
//     O(1) per column and the first streamed batch pays the copy — the
//     copy-on-write promotion contract of Dataset::ApplyBatch.
//
// CsrTable is the CSR ("compressed sparse row") replacement for
// vector<vector<Id>>: per-row (offset, count) into one shared pool. Rows
// support sorted insertion by rewriting the row at the pool tail; the
// abandoned bytes are tracked as garbage and compacted once they exceed
// the live size (amortized O(1) per insert).
#ifndef FUSER_COMMON_COLUMN_H_
#define FUSER_COMMON_COLUMN_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/logging.h"
#include "common/span.h"

namespace fuser {

template <typename T>
class Column {
  static_assert(std::is_trivially_copyable<T>::value,
                "columns hold raw-serializable values");

 public:
  Column() = default;
  Column(const Column&) = delete;
  Column& operator=(const Column&) = delete;
  Column(Column&&) = default;
  Column& operator=(Column&&) = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T* data() const { return data_; }
  const T& operator[](size_t i) const { return data_[i]; }
  Span<T> span() const { return Span<T>(data_, size_); }

  void push_back(T v) {
    EnsureOwned();
    vec_.push_back(v);
    Sync();
  }

  void Set(size_t i, T v) {
    FUSER_CHECK_LT(i, size_);
    EnsureOwned();
    vec_[i] = v;
  }

  void reserve(size_t n) {
    EnsureOwned();
    vec_.reserve(n);
    Sync();
  }

  /// Binds the column to `n` externally owned elements (snapshot attach).
  void Attach(const T* data, size_t n) {
    vec_.clear();
    vec_.shrink_to_fit();
    data_ = data;
    size_ = n;
    borrowed_ = true;
  }

  /// Copies borrowed storage into an owned vector; no-op when owned.
  void EnsureOwned() {
    if (!borrowed_) return;
    vec_.assign(data_, data_ + size_);
    borrowed_ = false;
    Sync();
  }

  bool borrowed() const { return borrowed_; }

  /// Heap bytes owned by this column (borrowed storage counts as zero).
  size_t owned_bytes() const { return vec_.capacity() * sizeof(T); }

 private:
  void Sync() {
    data_ = vec_.data();
    size_ = vec_.size();
  }

  std::vector<T> vec_;
  const T* data_ = nullptr;
  size_t size_ = 0;
  bool borrowed_ = false;
};

template <typename T>
class CsrTable {
  static_assert(std::is_trivially_copyable<T>::value,
                "CSR pools hold raw-serializable values");

 public:
  CsrTable() = default;
  CsrTable(const CsrTable&) = delete;
  CsrTable& operator=(const CsrTable&) = delete;
  CsrTable(CsrTable&&) = default;
  CsrTable& operator=(CsrTable&&) = default;

  size_t num_rows() const { return rows_; }
  size_t pool_size() const { return pool_len_; }
  size_t garbage() const { return garbage_; }
  bool borrowed() const { return borrowed_; }

  Span<T> row(size_t r) const {
    FUSER_CHECK_LT(r, rows_);
    return Span<T>(pool_ + offsets_[r], counts_[r]);
  }

  // ---- Two-pass bulk build (Finalize) ----

  /// Resets to an owned table with the given row sizes; rows are then
  /// populated in any order via Fill.
  void ResetWithCounts(const std::vector<uint32_t>& counts) {
    rows_ = counts.size();
    offs_v_.resize(rows_);
    cnts_v_.assign(counts.begin(), counts.end());
    uint64_t total = 0;
    for (size_t r = 0; r < rows_; ++r) {
      offs_v_[r] = total;
      total += counts[r];
    }
    pool_v_.assign(total, T{});
    cursor_ = offs_v_;
    live_ = total;
    garbage_ = 0;
    borrowed_ = false;
    Sync();
  }

  /// Appends `v` at row `r`'s next free slot (build phase only).
  void Fill(size_t r, T v) { pool_v_[cursor_[r]++] = v; }

  /// Ends the build phase; verifies every row was filled exactly.
  void FinishFill() {
    for (size_t r = 0; r < rows_; ++r) {
      FUSER_CHECK(cursor_[r] == offs_v_[r] + cnts_v_[r])
          << "CSR row " << r << " not fully filled";
    }
    cursor_.clear();
    cursor_.shrink_to_fit();
  }

  // ---- Streaming mutation (ApplyBatch) ----

  /// Appends `n` empty rows.
  void AppendRows(size_t n) {
    EnsureOwned();
    rows_ += n;
    offs_v_.resize(rows_, pool_v_.size());
    cnts_v_.resize(rows_, 0);
    Sync();
  }

  /// Inserts `v` into row `r` keeping it sorted ascending. The caller
  /// guarantees `v` is not already present. A row at the pool tail grows
  /// in place; any other row is rewritten at the tail and its old bytes
  /// become garbage (reclaimed by MaybeCompact).
  void InsertSorted(size_t r, T v) {
    EnsureOwned();
    FUSER_CHECK_LT(r, rows_);
    const size_t off = static_cast<size_t>(offs_v_[r]);
    const size_t cnt = cnts_v_[r];
    size_t idx = static_cast<size_t>(
        std::lower_bound(pool_v_.begin() + off, pool_v_.begin() + off + cnt,
                         v) -
        pool_v_.begin());
    if (off + cnt == pool_v_.size()) {
      pool_v_.insert(pool_v_.begin() + idx, v);
    } else {
      const size_t new_off = pool_v_.size();
      pool_v_.resize(new_off + cnt + 1);
      T* p = pool_v_.data();
      std::copy(p + off, p + idx, p + new_off);
      p[new_off + (idx - off)] = v;
      std::copy(p + idx, p + off + cnt, p + new_off + (idx - off) + 1);
      offs_v_[r] = new_off;
      garbage_ += cnt;
    }
    cnts_v_[r] = static_cast<uint32_t>(cnt + 1);
    ++live_;
    Sync();
  }

  /// Compacts when abandoned bytes exceed the live payload (amortized
  /// O(1) per InsertSorted).
  void MaybeCompact() {
    if (garbage_ > live_ && garbage_ > 4096) Compact();
  }

  void Compact() {
    if (borrowed_ || garbage_ == 0) return;
    std::vector<T> fresh;
    fresh.reserve(live_);
    for (size_t r = 0; r < rows_; ++r) {
      const size_t off = static_cast<size_t>(offs_v_[r]);
      offs_v_[r] = fresh.size();
      fresh.insert(fresh.end(), pool_v_.begin() + off,
                   pool_v_.begin() + off + cnts_v_[r]);
    }
    pool_v_ = std::move(fresh);
    garbage_ = 0;
    Sync();
  }

  // ---- Attach / promote (persistence) ----

  /// Binds the table to externally owned compact arrays (snapshot attach).
  void Attach(const uint64_t* offsets, const uint32_t* counts, const T* pool,
              size_t rows, size_t pool_len) {
    offs_v_.clear();
    offs_v_.shrink_to_fit();
    cnts_v_.clear();
    cnts_v_.shrink_to_fit();
    pool_v_.clear();
    pool_v_.shrink_to_fit();
    offsets_ = offsets;
    counts_ = counts;
    pool_ = pool;
    rows_ = rows;
    pool_len_ = pool_len;
    live_ = pool_len;
    garbage_ = 0;
    borrowed_ = true;
  }

  void EnsureOwned() {
    if (!borrowed_) return;
    offs_v_.assign(offsets_, offsets_ + rows_);
    cnts_v_.assign(counts_, counts_ + rows_);
    pool_v_.assign(pool_, pool_ + pool_len_);
    borrowed_ = false;
    Sync();
  }

  /// Direct array access for the snapshot writer's fast path (valid for
  /// bulk writes only when garbage() == 0: relocation-free tables keep
  /// the pool in row order).
  const uint64_t* offsets_data() const { return offsets_; }
  const uint32_t* counts_data() const { return counts_; }
  const T* pool_data() const { return pool_; }
  /// Live elements (pool_size() minus garbage).
  size_t live_size() const { return live_; }

  /// Heap bytes owned by this table (borrowed storage counts as zero).
  size_t owned_bytes() const {
    return offs_v_.capacity() * sizeof(uint64_t) +
           cnts_v_.capacity() * sizeof(uint32_t) +
           pool_v_.capacity() * sizeof(T) + cursor_.capacity() * sizeof(uint64_t);
  }

 private:
  void Sync() {
    offsets_ = offs_v_.data();
    counts_ = cnts_v_.data();
    pool_ = pool_v_.data();
    pool_len_ = pool_v_.size();
  }

  std::vector<uint64_t> offs_v_;
  std::vector<uint32_t> cnts_v_;
  std::vector<T> pool_v_;
  std::vector<uint64_t> cursor_;  // build phase only

  const uint64_t* offsets_ = nullptr;
  const uint32_t* counts_ = nullptr;
  const T* pool_ = nullptr;
  size_t rows_ = 0;
  size_t pool_len_ = 0;
  size_t live_ = 0;
  size_t garbage_ = 0;
  bool borrowed_ = false;
};

}  // namespace fuser

#endif  // FUSER_COMMON_COLUMN_H_
