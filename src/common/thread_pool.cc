#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace fuser {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = ResolveNumThreads(num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

size_t ResolveNumThreads(size_t num_threads) {
  if (num_threads != 0) return num_threads;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelFor(size_t count, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  num_threads = std::min(ResolveNumThreads(num_threads), count);
  if (num_threads <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&] {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (size_t i = 0; i + 1 < num_threads; ++i) {
    threads.emplace_back(worker);
  }
  worker();
  for (std::thread& t : threads) {
    t.join();
  }
}

}  // namespace fuser
