#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace fuser {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = ResolveNumThreads(num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

size_t ResolveNumThreads(size_t num_threads) {
  if (num_threads != 0) return num_threads;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelFor(size_t count, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  ParallelFor(count, num_threads, fn, ParallelForOptions{});
}

namespace {

/// Shared state of one ParallelFor call. Held by shared_ptr so pool
/// stragglers that run after the call returned (all chunks already done)
/// can still touch the counters safely; they never call fn.
struct ParallelForState {
  size_t count = 0;
  size_t chunk_size = 1;
  size_t num_chunks = 0;
  std::function<void(size_t)> fn;
  std::atomic<bool>* cancel = nullptr;
  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> chunks_done{0};
  std::mutex mu;
  std::condition_variable all_done;

  void RunWorker() {
    for (;;) {
      const size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) return;
      if (cancel == nullptr || !cancel->load(std::memory_order_relaxed)) {
        const size_t begin = chunk * chunk_size;
        const size_t end = std::min(begin + chunk_size, count);
        for (size_t i = begin; i < end; ++i) {
          if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
            break;
          }
          fn(i);
        }
      }
      if (chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          num_chunks) {
        // Lock pairs with the Wait below so the notify cannot race between
        // the waiter's predicate check and its sleep.
        std::lock_guard<std::mutex> lock(mu);
        all_done.notify_all();
      }
    }
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    all_done.wait(lock, [this] {
      return chunks_done.load(std::memory_order_acquire) == num_chunks;
    });
  }
};

}  // namespace

void ParallelFor(size_t count, size_t num_threads,
                 const std::function<void(size_t)>& fn,
                 const ParallelForOptions& options) {
  if (count == 0) return;
  num_threads = std::min(ResolveNumThreads(num_threads), count);
  if (num_threads <= 1) {
    for (size_t i = 0; i < count; ++i) {
      if (options.cancel != nullptr &&
          options.cancel->load(std::memory_order_relaxed)) {
        return;
      }
      fn(i);
    }
    return;
  }

  auto state = std::make_shared<ParallelForState>();
  state->count = count;
  state->fn = fn;
  state->cancel = options.cancel;
  // A few chunks per worker: large enough that the claim counter is cold,
  // small enough that an unlucky slow chunk cannot straggle the whole call.
  const size_t target_chunks = num_threads * 8;
  state->chunk_size = std::max<size_t>(1, (count + target_chunks - 1) /
                                              target_chunks);
  state->num_chunks = (count + state->chunk_size - 1) / state->chunk_size;

  if (options.pool != nullptr) {
    for (size_t i = 0; i + 1 < num_threads; ++i) {
      options.pool->Schedule([state] { state->RunWorker(); });
    }
    state->RunWorker();
    state->Wait();
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (size_t i = 0; i + 1 < num_threads; ++i) {
    threads.emplace_back([&state] { state->RunWorker(); });
  }
  state->RunWorker();
  for (std::thread& t : threads) {
    t.join();
  }
}

}  // namespace fuser
