// Bit-mask utilities used by the inclusion-exclusion machinery.
//
// Source subsets within a correlation cluster are represented as uint64_t
// masks (bit i set <=> source i in the subset); this file provides popcount,
// bit iteration, submask enumeration, and k-combination enumeration over
// masks.
#ifndef FUSER_COMMON_BIT_UTIL_H_
#define FUSER_COMMON_BIT_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fuser {

using Mask = uint64_t;

/// Portable (C++17) popcount / count-trailing-zeros over 64-bit words.
#if defined(__GNUC__) || defined(__clang__)
inline int PopCount64(uint64_t m) { return __builtin_popcountll(m); }

/// Undefined for m == 0 (mirrors the hardware instruction).
inline int CountTrailingZeros64(uint64_t m) { return __builtin_ctzll(m); }
#else
inline int PopCount64(uint64_t m) {
  int c = 0;
  while (m != 0) {
    m &= m - 1;
    ++c;
  }
  return c;
}

/// Undefined for m == 0 (mirrors the hardware instruction).
inline int CountTrailingZeros64(uint64_t m) {
  int c = 0;
  while ((m & 1) == 0) {
    m >>= 1;
    ++c;
  }
  return c;
}
#endif

inline int PopCount(Mask m) { return PopCount64(m); }

/// Index of the lowest set bit; undefined for m == 0.
inline int LowestBit(Mask m) { return CountTrailingZeros64(m); }

/// Mask with bits [0, n) set. n must be <= 64.
inline Mask FullMask(int n) {
  return n >= 64 ? ~Mask{0} : ((Mask{1} << n) - 1);
}

inline bool HasBit(Mask m, int i) { return (m >> i) & 1; }
inline Mask WithBit(Mask m, int i) { return m | (Mask{1} << i); }
inline Mask WithoutBit(Mask m, int i) { return m & ~(Mask{1} << i); }

/// Returns the indices of set bits, lowest first.
std::vector<int> BitIndices(Mask m);

/// Calls fn(i) for every set bit i of m, lowest first.
template <typename Fn>
void ForEachBit(Mask m, Fn&& fn) {
  while (m != 0) {
    fn(CountTrailingZeros64(m));
    m &= m - 1;
  }
}

/// Enumerates all submasks of `set` (including 0 and `set` itself) and calls
/// fn(submask) for each. Visits 2^popcount(set) masks.
template <typename Fn>
void ForEachSubmask(Mask set, Fn&& fn) {
  Mask sub = set;
  for (;;) {
    fn(sub);
    if (sub == 0) break;
    sub = (sub - 1) & set;
  }
}

/// Enumerates the submasks of `set` with exactly k bits set and calls
/// fn(submask) for each.
template <typename Fn>
void ForEachKSubset(Mask set, int k, Fn&& fn) {
  std::vector<int> bits = BitIndices(set);
  const int n = static_cast<int>(bits.size());
  if (k < 0 || k > n) return;
  if (k == 0) {
    fn(Mask{0});
    return;
  }
  // Gosper-style enumeration over the *positions* vector: iterate all
  // k-combinations of indices into `bits`.
  std::vector<int> comb(k);
  for (int i = 0; i < k; ++i) comb[i] = i;
  for (;;) {
    Mask m = 0;
    for (int idx : comb) m |= Mask{1} << bits[idx];
    fn(m);
    // Advance to next combination.
    int i = k - 1;
    while (i >= 0 && comb[i] == n - k + i) --i;
    if (i < 0) break;
    ++comb[i];
    for (int j = i + 1; j < k; ++j) comb[j] = comb[j - 1] + 1;
  }
}

/// n choose k without overflow for the small arguments used here
/// (n <= 64); saturates at UINT64_MAX.
uint64_t BinomialCoefficient(int n, int k);

/// 64-bit FNV-1a over a byte range, word-chunked for throughput and
/// chainable via `seed`. Any single-byte change anywhere in the input
/// changes the result (every step is a bijection of the running state) —
/// the property the snapshot checksums and the dataset content
/// fingerprint rely on.
uint64_t HashBytes64(const void* data, size_t size,
                     uint64_t seed = 0xCBF29CE484222325ULL);

/// Full-avalanche finalizer (murmur3 fmix64): every input bit affects
/// every output bit, including the low ones that `hash & mask` table
/// indexing reads.
inline uint64_t Avalanche64(uint64_t h) {
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  return h;
}

/// Hash for open-addressing table lookups keyed on a byte string. The raw
/// chunked HashBytes64 is a checksum, not a slot hash: it folds 8 input
/// bytes per multiply, so its *low* bits — the ones `& mask` keeps — see
/// only the first few bytes of the key. Keys sharing a prefix (every
/// generated id, every URL) then collapse into a handful of probe
/// clusters and linear probing degrades to O(n) per lookup. The finalizer
/// restores full avalanche; checksums keep the chainable un-finalized
/// form.
inline uint64_t TableHash64(const void* data, size_t size) {
  return Avalanche64(HashBytes64(data, size));
}

/// In-place 64x64 bit-matrix transpose: after the call, bit j of m[i]
/// equals bit i of the original m[j]. Bit k of word w is addressed as
/// (w >> k) & 1, i.e. the LSB-first convention used by DynamicBitset.
///
/// Recursive block-swap (Hacker's Delight 7-3 adapted to LSB-first): at
/// block size j it swaps the high j bits of row k with the low j bits of
/// row k+j for every aligned row pair, halving j each round — 6 rounds of
/// 32 word-pair swaps instead of 4096 single-bit moves. This is the
/// word-level primitive behind the pattern-grouping hot path: k source
/// bitset words in, 64 per-triple provider masks out.
inline void Transpose64x64(uint64_t m[64]) {
  uint64_t mask = 0x00000000FFFFFFFFULL;
  for (int j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      uint64_t t = ((m[k] >> j) ^ m[k + j]) & mask;
      m[k] ^= t << j;
      m[k + j] ^= t;
    }
  }
}

/// Transposes `k` row words (k <= 64) into 64 column masks: cols[j] gets
/// bit i set iff bit j of rows[i] is set, for i < k; bits >= k are zero.
/// rows may alias cols only if they point to the same 64-word buffer.
inline void TransposeBitColumns(const uint64_t* rows, size_t k,
                                uint64_t cols[64]) {
  uint64_t buf[64];
  for (size_t i = 0; i < k; ++i) buf[i] = rows[i];
  for (size_t i = k; i < 64; ++i) buf[i] = 0;
  Transpose64x64(buf);
  for (size_t j = 0; j < 64; ++j) cols[j] = buf[j];
}

/// splitmix-style mix of two 64-bit words into one hash value. Shared by
/// every hasher keyed on a mask pair (pattern keys, joint-stats memos).
inline uint64_t MixMaskPair(uint64_t a, uint64_t b) {
  uint64_t h = a * 0x9E3779B97F4A7C15ULL;
  h ^= (h >> 30);
  h += b * 0xBF58476D1CE4E5B9ULL;
  h ^= (h >> 27);
  return h * 0x94D049BB133111EBULL;
}

}  // namespace fuser

#endif  // FUSER_COMMON_BIT_UTIL_H_
