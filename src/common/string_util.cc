#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace fuser {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string_view StrTrim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string result;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) result.append(sep);
    result.append(pieces[i]);
  }
  return result;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed));
    std::vsnprintf(result.data(), result.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return result;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ParseDouble(std::string_view text, double* out) {
  std::string buf(StrTrim(text));
  if (buf.empty()) return false;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

bool ParseSizeT(std::string_view text, size_t* out) {
  std::string buf(StrTrim(text));
  if (buf.empty()) return false;
  char* end = nullptr;
  unsigned long long value = std::strtoull(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return false;
  *out = static_cast<size_t>(value);
  return true;
}

}  // namespace fuser
