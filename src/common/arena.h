// StringArena: bump-pointer storage for interned strings.
//
// The sharded router keys its global triple index by encoded triple text.
// At 10-100M triples, one heap allocation per key (std::string nodes) is
// both an allocator bottleneck and ~32 bytes of per-string bookkeeping;
// the arena packs keys back to back in large chunks and hands out
// string_views into stable storage (chunks are never reallocated or
// freed until the arena dies).
#ifndef FUSER_COMMON_ARENA_H_
#define FUSER_COMMON_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace fuser {

class StringArena {
 public:
  explicit StringArena(size_t chunk_bytes = 1 << 16)
      : chunk_bytes_(chunk_bytes) {}

  StringArena(const StringArena&) = delete;
  StringArena& operator=(const StringArena&) = delete;
  // Movable: views into the arena stay valid (chunk storage moves with it).
  StringArena(StringArena&&) = default;
  StringArena& operator=(StringArena&&) = default;

  /// Copies `text` into the arena and returns a view of the copy. The view
  /// stays valid for the arena's lifetime.
  std::string_view Intern(std::string_view text) {
    if (chunks_.empty() || text.size() > capacity_ - used_) {
      // Oversized strings get a dedicated right-sized chunk.
      capacity_ = std::max(text.size(), chunk_bytes_);
      chunks_.push_back(std::make_unique<char[]>(capacity_));
      used_ = 0;
    }
    char* dst = chunks_.back().get() + used_;
    if (!text.empty()) std::memcpy(dst, text.data(), text.size());
    used_ += text.size();
    total_bytes_ += text.size();
    return std::string_view(dst, text.size());
  }

  /// Total payload bytes interned (diagnostics).
  size_t total_bytes() const { return total_bytes_; }

 private:
  size_t chunk_bytes_;
  size_t capacity_ = 0;
  size_t used_ = 0;
  size_t total_bytes_ = 0;
  std::vector<std::unique_ptr<char[]>> chunks_;
};

}  // namespace fuser

#endif  // FUSER_COMMON_ARENA_H_
