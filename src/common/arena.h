// Offset-addressed string storage: StringArena, StringRef, StringInterner.
//
// Every string the Dataset holds (triple subject/predicate/object, source
// and domain names) lives exactly once in a StringArena and is referred to
// by a packed 64-bit StringRef (40-bit byte offset + 24-bit length). The
// arena is addressed by *offset*, not by pointer: chunk k starts at offset
// k * chunk_bytes, so the whole arena serializes to a single byte image in
// which every ref stays valid — a snapshot loader can attach the image
// (mmap'd or copied) and resolve refs without touching a string.
//
// Layout rules that make the image/offset scheme work:
//   * chunk_bytes is a power of two; offset -> pointer is one shift, one
//     mask, and one table lookup.
//   * A string never spans two separate allocations. Strings longer than
//     the tail of the current chunk abandon the tail (zero-filled) and
//     start a fresh chunk group; oversized strings get one contiguous
//     multi-chunk allocation whose slots alias into it.
//   * The serialized image is [0, image_bytes()), zero-padded to a chunk
//     boundary, so an attached arena resumes appending in fresh owned
//     chunks without ever writing to the mapped region.
//
// StringInterner adds content-addressed dedup on top (open-addressing hash
// of refs, compared through the arena), so equal strings share one ref —
// which in turn lets the triple index compare refs instead of bytes.
#ifndef FUSER_COMMON_ARENA_H_
#define FUSER_COMMON_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bit_util.h"
#include "common/logging.h"

namespace fuser {

/// Packed reference to an interned string: 40-bit arena offset (1 TiB of
/// string payload) + 24-bit length (16 MiB per string). Trivially
/// copyable, so columns of refs serialize as raw u64 arrays.
class StringRef {
 public:
  static constexpr int kLengthBits = 24;
  static constexpr uint64_t kMaxOffset =
      (uint64_t{1} << (64 - kLengthBits)) - 1;
  static constexpr uint64_t kMaxLength = (uint64_t{1} << kLengthBits) - 1;

  constexpr StringRef() = default;

  static StringRef Make(uint64_t offset, size_t length) {
    FUSER_CHECK(offset <= kMaxOffset) << "string arena exceeds 1 TiB";
    FUSER_CHECK(length <= kMaxLength) << "interned string exceeds 16 MiB";
    return StringRef((offset << kLengthBits) | static_cast<uint64_t>(length));
  }
  static constexpr StringRef FromPacked(uint64_t packed) {
    return StringRef(packed);
  }
  /// Sentinel distinct from every real ref (offset/length would overflow).
  static constexpr StringRef Invalid() { return StringRef(~uint64_t{0}); }

  constexpr uint64_t packed() const { return packed_; }
  constexpr uint64_t offset() const { return packed_ >> kLengthBits; }
  constexpr uint32_t length() const {
    return static_cast<uint32_t>(packed_ & kMaxLength);
  }
  constexpr bool valid() const { return packed_ != ~uint64_t{0}; }

  constexpr bool operator==(StringRef o) const { return packed_ == o.packed_; }
  constexpr bool operator!=(StringRef o) const { return packed_ != o.packed_; }

 private:
  explicit constexpr StringRef(uint64_t packed) : packed_(packed) {}
  uint64_t packed_ = 0;
};

static_assert(sizeof(StringRef) == 8, "StringRef must serialize as one u64");

class StringArena {
 public:
  /// `chunk_bytes` must be a power of two (checked).
  explicit StringArena(size_t chunk_bytes = size_t{1} << 16)
      : chunk_bytes_(chunk_bytes) {
    FUSER_CHECK(chunk_bytes >= 64 && (chunk_bytes & (chunk_bytes - 1)) == 0)
        << "chunk_bytes must be a power of two >= 64";
    log2_chunk_ = CountTrailingZeros64(chunk_bytes);
  }

  StringArena(const StringArena&) = delete;
  StringArena& operator=(const StringArena&) = delete;
  // Movable: chunk allocations (and any attached mapping) keep their
  // addresses, so refs and views stay valid across the move.
  StringArena(StringArena&&) = default;
  StringArena& operator=(StringArena&&) = default;

  /// Copies `text` into the arena and returns its ref. Empty strings share
  /// the canonical ref {offset 0, length 0} and consume no storage.
  StringRef InternRef(std::string_view text) {
    if (text.empty()) return StringRef::Make(0, 0);
    if (pos_ + text.size() > end_offset_) Grow(text.size());
    std::memcpy(MutablePtr(pos_), text.data(), text.size());
    StringRef ref = StringRef::Make(pos_, text.size());
    pos_ += text.size();
    payload_bytes_ += text.size();
    return ref;
  }

  /// Copies `text` into the arena and returns a view of the copy (stable
  /// for the arena's lifetime). Compatibility shim for callers that key
  /// maps by view (shard/sharded_dataset).
  std::string_view Intern(std::string_view text) {
    return View(InternRef(text));
  }

  /// Resolves a ref. Bounds-checked: a ref pointing past the interned
  /// region fails the CHECK instead of reading foreign memory.
  std::string_view View(StringRef ref) const {
    const uint64_t off = ref.offset();
    const size_t len = ref.length();
    FUSER_CHECK(off + len <= pos_) << "string ref out of arena bounds";
    if (len == 0) return std::string_view();
    return std::string_view(Ptr(off), len);
  }

  /// Binds this (empty) arena to a serialized image. The image must be
  /// image_bytes long, a multiple of chunk_bytes, and outlive the arena
  /// (or the next detach). Later interns allocate fresh owned chunks; the
  /// mapped region is never written.
  void AttachImage(const char* image, size_t image_bytes) {
    FUSER_CHECK(pos_ == 0 && chunk_base_.empty())
        << "AttachImage on a non-empty arena";
    FUSER_CHECK(image_bytes % chunk_bytes_ == 0);
    const size_t chunks = image_bytes >> log2_chunk_;
    chunk_base_.reserve(chunks);
    for (size_t i = 0; i < chunks; ++i) {
      chunk_base_.push_back(const_cast<char*>(image) + i * chunk_bytes_);
    }
    pos_ = end_offset_ = image_bytes;
    mapped_bytes_ = image_bytes;
    payload_bytes_ = image_bytes;  // upper bound; gaps are zero padding
  }

  /// Copies a serialized image into owned storage (one contiguous
  /// allocation) — the non-mmap bulk-load path.
  void AdoptImageCopy(const char* image, size_t image_bytes) {
    FUSER_CHECK(pos_ == 0 && chunk_base_.empty())
        << "AdoptImageCopy on a non-empty arena";
    FUSER_CHECK(image_bytes % chunk_bytes_ == 0);
    if (image_bytes == 0) return;
    auto block = std::make_unique<char[]>(image_bytes);
    std::memcpy(block.get(), image, image_bytes);
    const size_t chunks = image_bytes >> log2_chunk_;
    chunk_base_.reserve(chunks);
    for (size_t i = 0; i < chunks; ++i) {
      chunk_base_.push_back(block.get() + i * chunk_bytes_);
    }
    allocations_.push_back(std::move(block));
    owned_bytes_ = image_bytes;
    pos_ = end_offset_ = image_bytes;
    payload_bytes_ = image_bytes;
  }

  /// Serialized image size: the interned region rounded up to a chunk
  /// boundary (the padding is zeros).
  size_t image_bytes() const {
    return (pos_ + chunk_bytes_ - 1) & ~(chunk_bytes_ - 1);
  }

  /// Streams the image as (pointer, size) pieces in offset order. Owned
  /// chunks are zero-initialized at allocation, so abandoned tails and the
  /// final padding serialize deterministically as zeros.
  template <typename Fn>
  void ForEachImageChunk(Fn&& fn) const {
    const size_t total = image_bytes();
    for (size_t start = 0; start < total; start += chunk_bytes_) {
      fn(static_cast<const char*>(chunk_base_[start >> log2_chunk_]),
         std::min(chunk_bytes_, total - start));
    }
  }

  size_t chunk_bytes() const { return chunk_bytes_; }
  /// Total payload bytes interned (diagnostics).
  size_t total_bytes() const { return payload_bytes_; }
  /// Heap bytes owned by this arena (excludes an attached image).
  size_t owned_bytes() const { return owned_bytes_; }
  /// Bytes resolved through an attached image (0 when fully owned).
  size_t mapped_bytes() const { return mapped_bytes_; }

 private:
  const char* Ptr(uint64_t offset) const {
    return chunk_base_[offset >> log2_chunk_] + (offset & (chunk_bytes_ - 1));
  }
  char* MutablePtr(uint64_t offset) {
    return chunk_base_[offset >> log2_chunk_] + (offset & (chunk_bytes_ - 1));
  }

  /// Abandons the current chunk tail and allocates one contiguous group of
  /// chunk slots big enough for `len` bytes.
  void Grow(size_t len) {
    pos_ = end_offset_;  // abandon the (zero-filled) tail
    const size_t group_bytes =
        ((std::max(len, size_t{1}) + chunk_bytes_ - 1) & ~(chunk_bytes_ - 1));
    // make_unique value-initializes the array, so abandoned tails and the
    // final image padding serialize deterministically as zeros.
    auto block = std::make_unique<char[]>(group_bytes);
    for (size_t off = 0; off < group_bytes; off += chunk_bytes_) {
      chunk_base_.push_back(block.get() + off);
    }
    allocations_.push_back(std::move(block));
    owned_bytes_ += group_bytes;
    end_offset_ += group_bytes;
  }

  size_t chunk_bytes_;
  int log2_chunk_ = 0;
  uint64_t pos_ = 0;         // next free offset
  uint64_t end_offset_ = 0;  // total addressable bytes
  size_t payload_bytes_ = 0;
  size_t owned_bytes_ = 0;
  size_t mapped_bytes_ = 0;
  std::vector<char*> chunk_base_;
  std::vector<std::unique_ptr<char[]>> allocations_;
};

/// Content-addressed dedup over a StringArena: equal strings intern to the
/// same StringRef, so higher layers compare refs instead of bytes. Open
/// addressing with linear probing over packed refs; the table rebuilds
/// lazily after a snapshot attach (InsertExisting per known ref).
class StringInterner {
 public:
  explicit StringInterner(size_t chunk_bytes = size_t{1} << 16)
      : arena_(chunk_bytes) {}

  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;
  StringInterner(StringInterner&&) = default;
  StringInterner& operator=(StringInterner&&) = default;

  /// Ref of `text`, interning it if new.
  StringRef Intern(std::string_view text) {
    MaybeGrow();
    const size_t mask = slots_.size() - 1;
    size_t i = TableHash64(text.data(), text.size()) & mask;
    while (slots_[i] != kEmptySlot) {
      StringRef ref = StringRef::FromPacked(slots_[i]);
      if (arena_.View(ref) == text) return ref;
      i = (i + 1) & mask;
    }
    StringRef ref = arena_.InternRef(text);
    slots_[i] = ref.packed();
    ++count_;
    return ref;
  }

  /// Ref of `text` if already interned, StringRef::Invalid() otherwise.
  StringRef Find(std::string_view text) const {
    if (slots_.empty()) return StringRef::Invalid();
    const size_t mask = slots_.size() - 1;
    size_t i = TableHash64(text.data(), text.size()) & mask;
    while (slots_[i] != kEmptySlot) {
      StringRef ref = StringRef::FromPacked(slots_[i]);
      if (arena_.View(ref) == text) return ref;
      i = (i + 1) & mask;
    }
    return StringRef::Invalid();
  }

  /// Re-registers a ref already present in the arena (index rebuild after
  /// an image attach). First ref for a given content wins; dataset columns
  /// are canonical so duplicates always carry the same ref.
  void InsertExisting(StringRef ref) {
    MaybeGrow();
    const std::string_view text = arena_.View(ref);
    const size_t mask = slots_.size() - 1;
    size_t i = TableHash64(text.data(), text.size()) & mask;
    while (slots_[i] != kEmptySlot) {
      if (arena_.View(StringRef::FromPacked(slots_[i])) == text) return;
      i = (i + 1) & mask;
    }
    slots_[i] = ref.packed();
    ++count_;
  }

  const StringArena& arena() const { return arena_; }
  StringArena* mutable_arena() { return &arena_; }

  size_t size() const { return count_; }
  size_t table_bytes() const { return slots_.size() * sizeof(uint64_t); }

 private:
  static constexpr uint64_t kEmptySlot = ~uint64_t{0};

  void MaybeGrow() {
    if (slots_.empty()) {
      slots_.assign(64, kEmptySlot);
      return;
    }
    if (count_ * 10 < slots_.size() * 7) return;
    std::vector<uint64_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, kEmptySlot);
    const size_t mask = slots_.size() - 1;
    for (uint64_t packed : old) {
      if (packed == kEmptySlot) continue;
      const std::string_view text = arena_.View(StringRef::FromPacked(packed));
      size_t i = TableHash64(text.data(), text.size()) & mask;
      while (slots_[i] != kEmptySlot) i = (i + 1) & mask;
      slots_[i] = packed;
    }
  }

  StringArena arena_;
  std::vector<uint64_t> slots_;
  size_t count_ = 0;
};

}  // namespace fuser

#endif  // FUSER_COMMON_ARENA_H_
