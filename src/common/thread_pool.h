// Fixed-size thread pool with a ParallelFor helper.
//
// PrecRecCorr's per-triple probabilities are independent (the paper notes
// "Parallelization can significantly improve the efficiency of
// PrecRecCorr"); the engine uses ParallelFor to score distinct observation
// patterns concurrently. The engine owns one persistent ThreadPool and
// passes it through ParallelForOptions so repeated Run/Update calls reuse
// warm workers instead of paying thread creation per parallel section.
#ifndef FUSER_COMMON_THREAD_POOL_H_
#define FUSER_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fuser {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 = one per hardware thread).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Schedule(std::function<void()> task);

  /// Blocks until every scheduled task has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> tasks_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

/// Resolves a user-facing thread-count setting: 0 ("auto") becomes
/// std::thread::hardware_concurrency(), floored at 1. Every component that
/// exposes a num_threads option routes it through here so "auto" means the
/// same thing everywhere.
size_t ResolveNumThreads(size_t num_threads);

struct ParallelForOptions {
  /// Run worker tasks on this pool instead of spawning fresh OS threads
  /// (the calling thread always participates as one worker). The pool may
  /// be shared: stragglers that find no chunk left exit immediately, so a
  /// ParallelFor never blocks on unrelated pool work beyond in-flight
  /// tasks.
  ThreadPool* pool = nullptr;
  /// Cooperative cancellation: when non-null and set, workers stop claiming
  /// chunks and skip remaining items. Already-running fn calls finish;
  /// ParallelFor still returns only after every claimed chunk completes.
  std::atomic<bool>* cancel = nullptr;
};

/// Runs fn(i) for i in [0, count) across `num_threads` workers, blocking
/// until completion. num_threads is resolved via ResolveNumThreads (0 =
/// hardware concurrency); with a single resolved worker (or count <= 1) it
/// runs inline. `fn` must be safe to invoke concurrently for distinct i.
///
/// Dispatch is chunked: workers claim contiguous index ranges (a handful
/// per worker) from one atomic counter, not one index at a time, so cheap
/// per-item bodies are not dominated by contended fetch_adds.
void ParallelFor(size_t count, size_t num_threads,
                 const std::function<void(size_t)>& fn);
void ParallelFor(size_t count, size_t num_threads,
                 const std::function<void(size_t)>& fn,
                 const ParallelForOptions& options);

}  // namespace fuser

#endif  // FUSER_COMMON_THREAD_POOL_H_
