// Fixed-size thread pool with a ParallelFor helper.
//
// PrecRecCorr's per-triple probabilities are independent (the paper notes
// "Parallelization can significantly improve the efficiency of
// PrecRecCorr"); the engine uses ParallelFor to score distinct observation
// patterns concurrently.
#ifndef FUSER_COMMON_THREAD_POOL_H_
#define FUSER_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fuser {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 = one per hardware thread).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Schedule(std::function<void()> task);

  /// Blocks until every scheduled task has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> tasks_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

/// Resolves a user-facing thread-count setting: 0 ("auto") becomes
/// std::thread::hardware_concurrency(), floored at 1. Every component that
/// exposes a num_threads option routes it through here so "auto" means the
/// same thing everywhere.
size_t ResolveNumThreads(size_t num_threads);

/// Runs fn(i) for i in [0, count) across `num_threads` workers, blocking
/// until completion. num_threads is resolved via ResolveNumThreads (0 =
/// hardware concurrency); with a single resolved worker (or count <= 1) it
/// runs inline. `fn` must be safe to invoke concurrently for distinct i.
void ParallelFor(size_t count, size_t num_threads,
                 const std::function<void(size_t)>& fn);

}  // namespace fuser

#endif  // FUSER_COMMON_THREAD_POOL_H_
