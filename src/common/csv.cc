#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace fuser {

StatusOr<CsvRow> ParseCsvLine(const std::string& line, char sep) {
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && field.empty()) {
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == sep) {
      row.push_back(std::move(field));
      field.clear();
      ++i;
      continue;
    }
    field.push_back(c);
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quote in CSV line: " + line);
  }
  row.push_back(std::move(field));
  return row;
}

std::string FormatCsvLine(const CsvRow& row, char sep) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(sep);
    const std::string& field = row[i];
    bool needs_quotes = field.find(sep) != std::string::npos ||
                        field.find('"') != std::string::npos ||
                        field.find('\n') != std::string::npos;
    if (!needs_quotes) {
      out += field;
      continue;
    }
    out.push_back('"');
    for (char c : field) {
      if (c == '"') out.push_back('"');
      out.push_back(c);
    }
    out.push_back('"');
  }
  return out;
}

StatusOr<std::vector<CsvRow>> ReadCsvFile(const std::string& path, char sep) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open file for reading: " + path);
  }
  std::vector<CsvRow> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    FUSER_ASSIGN_OR_RETURN(CsvRow row, ParseCsvLine(line, sep));
    rows.push_back(std::move(row));
  }
  return rows;
}

Status WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows,
                    char sep) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  for (const CsvRow& row : rows) {
    out << FormatCsvLine(row, sep) << '\n';
  }
  if (!out) {
    return Status::IoError("write failure: " + path);
  }
  return Status::OK();
}

}  // namespace fuser
