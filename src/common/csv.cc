#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace fuser {

namespace {

/// Parses `text` into `*row`. Returns true when the record is complete and
/// false when the text ends inside an open quote (the record continues on
/// the next physical line). `*row` is only valid when the result is true.
bool ParseCsvInto(const std::string& text, char sep, CsvRow* row) {
  row->clear();
  std::string field;
  bool in_quotes = false;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && field.empty()) {
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == sep) {
      row->push_back(std::move(field));
      field.clear();
      ++i;
      continue;
    }
    field.push_back(c);
    ++i;
  }
  if (in_quotes) return false;
  row->push_back(std::move(field));
  return true;
}

/// Advances the parser's quote state over `text` without materializing
/// fields, mirroring ParseCsvInto exactly: a quote opens only at the start
/// of a field, "" escapes inside quotes. Lets ReadCsvFile test record
/// completeness in O(line) per physical line instead of re-parsing the
/// accumulated record (O(record^2) for fields with many newlines).
void ScanQuoteState(const std::string& text, char sep, bool* in_quotes,
                    bool* field_empty) {
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (*in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          *field_empty = false;
          i += 2;
          continue;
        }
        *in_quotes = false;
        ++i;
        continue;
      }
      *field_empty = false;
      ++i;
      continue;
    }
    if (c == '"' && *field_empty) {
      *in_quotes = true;
      ++i;
      continue;
    }
    if (c == sep) {
      *field_empty = true;
      ++i;
      continue;
    }
    *field_empty = false;
    ++i;
  }
}

}  // namespace

StatusOr<CsvRow> ParseCsvLine(const std::string& line, char sep) {
  CsvRow row;
  if (!ParseCsvInto(line, sep, &row)) {
    return Status::InvalidArgument("unterminated quote in CSV line: " + line);
  }
  return row;
}

std::string FormatCsvLine(const CsvRow& row, char sep) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(sep);
    const std::string& field = row[i];
    // Quote separators, quotes, and line breaks (CR would otherwise be
    // mistaken for a CRLF terminator on read); also quote a leading '#' on
    // the first field so the written line is not mistaken for a comment on
    // reload.
    bool needs_quotes = field.find(sep) != std::string::npos ||
                        field.find('"') != std::string::npos ||
                        field.find('\n') != std::string::npos ||
                        field.find('\r') != std::string::npos ||
                        (i == 0 && !field.empty() && field[0] == '#');
    if (!needs_quotes) {
      out += field;
      continue;
    }
    out.push_back('"');
    for (char c : field) {
      if (c == '"') out.push_back('"');
      out.push_back(c);
    }
    out.push_back('"');
  }
  return out;
}

StatusOr<std::vector<CsvRow>> ReadCsvFile(const std::string& path, char sep) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open file for reading: " + path);
  }
  std::vector<CsvRow> rows;
  std::string line;
  // A quoted field may legally contain '\n' (FormatCsvLine emits it), so a
  // logical record can span physical lines: keep accumulating while the
  // record ends inside an open quote. Blank lines and '#' comments are
  // skipped only *between* records, never inside one. A trailing '\r' is a
  // CRLF line terminator only where the record actually ends; inside an
  // open quote it is field content and is preserved.
  std::string record;
  bool in_record = false;
  bool in_quotes = false;
  bool field_empty = true;
  CsvRow row;
  while (std::getline(in, line)) {
    const bool had_cr = !line.empty() && line.back() == '\r';
    if (had_cr) line.pop_back();
    if (!in_record) {
      if (line.empty() || line[0] == '#') continue;
      in_record = true;
      in_quotes = false;
      field_empty = true;
      record.clear();
    } else {
      // The previous physical line ended inside the open quote, so its
      // line break is field content.
      record.push_back('\n');
    }
    ScanQuoteState(line, sep, &in_quotes, &field_empty);
    record += line;
    if (in_quotes) {
      if (had_cr) {
        record.push_back('\r');
        field_empty = false;
      }
      continue;  // quote still open: the record spans the next line
    }
    if (!ParseCsvInto(record, sep, &row)) {
      return Status::InvalidArgument("unterminated quote in CSV record: " +
                                     record);
    }
    rows.push_back(std::move(row));
    row.clear();
    in_record = false;
  }
  if (in_record) {
    return Status::InvalidArgument("unterminated quote at end of file: " +
                                   path);
  }
  return rows;
}

Status WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows,
                    char sep) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  for (const CsvRow& row : rows) {
    out << FormatCsvLine(row, sep) << '\n';
  }
  if (!out) {
    return Status::IoError("write failure: " + path);
  }
  return Status::OK();
}

}  // namespace fuser
