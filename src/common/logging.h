// Minimal leveled logging plus CHECK macros.
//
// FUSER_CHECK* macros abort on violated invariants; they are used for
// programmer errors only (user-facing failures go through Status).
#ifndef FUSER_COMMON_LOGGING_H_
#define FUSER_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace fuser {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace fuser

#define FUSER_LOG(level)                                              \
  ::fuser::internal::LogMessage(::fuser::LogLevel::k##level, __FILE__, \
                                __LINE__)                              \
      .stream()

#define FUSER_CHECK(condition)                                        \
  if (!(condition))                                                   \
  ::fuser::internal::FatalLogMessage(__FILE__, __LINE__).stream()     \
      << "Check failed: " #condition " "

#define FUSER_CHECK_EQ(a, b) FUSER_CHECK((a) == (b))
#define FUSER_CHECK_NE(a, b) FUSER_CHECK((a) != (b))
#define FUSER_CHECK_LT(a, b) FUSER_CHECK((a) < (b))
#define FUSER_CHECK_LE(a, b) FUSER_CHECK((a) <= (b))
#define FUSER_CHECK_GT(a, b) FUSER_CHECK((a) > (b))
#define FUSER_CHECK_GE(a, b) FUSER_CHECK((a) >= (b))

#endif  // FUSER_COMMON_LOGGING_H_
