#include "common/bit_util.h"

#include <limits>

namespace fuser {

std::vector<int> BitIndices(Mask m) {
  std::vector<int> bits;
  bits.reserve(static_cast<size_t>(PopCount(m)));
  ForEachBit(m, [&](int i) { bits.push_back(i); });
  return bits;
}

uint64_t BinomialCoefficient(int n, int k) {
  if (k < 0 || k > n) return 0;
  if (k > n - k) k = n - k;
  uint64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    // result *= (n - k + i) / i, in a form that stays integral.
    uint64_t num = static_cast<uint64_t>(n - k + i);
    if (result > std::numeric_limits<uint64_t>::max() / num) {
      return std::numeric_limits<uint64_t>::max();
    }
    result = result * num / static_cast<uint64_t>(i);
  }
  return result;
}

uint64_t HashBytes64(const void* data, size_t size, uint64_t seed) {
  // FNV-1a processed 8 input bytes per step (little-endian chunking) so
  // hashing runs at memory speed on multi-megabyte inputs. Each step is
  // h -> (h ^ chunk) * prime — a bijection of h for a fixed chunk — so a
  // change to any input byte changes the final value.
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t chunk = 0;
    __builtin_memcpy(&chunk, bytes + i, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    chunk = __builtin_bswap64(chunk);
#endif
    h ^= chunk;
    h *= 0x100000001B3ULL;
  }
  for (; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace fuser
