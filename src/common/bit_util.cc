#include "common/bit_util.h"

#include <limits>

namespace fuser {

std::vector<int> BitIndices(Mask m) {
  std::vector<int> bits;
  bits.reserve(static_cast<size_t>(PopCount(m)));
  ForEachBit(m, [&](int i) { bits.push_back(i); });
  return bits;
}

uint64_t BinomialCoefficient(int n, int k) {
  if (k < 0 || k > n) return 0;
  if (k > n - k) k = n - k;
  uint64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    // result *= (n - k + i) / i, in a form that stays integral.
    uint64_t num = static_cast<uint64_t>(n - k + i);
    if (result > std::numeric_limits<uint64_t>::max() / num) {
      return std::numeric_limits<uint64_t>::max();
    }
    result = result * num / static_cast<uint64_t>(i);
  }
  return result;
}

}  // namespace fuser
