#include "common/logging.h"

#include <atomic>

namespace fuser {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << "[FATAL " << file << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace internal
}  // namespace fuser
