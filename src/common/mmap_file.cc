#include "common/mmap_file.h"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define FUSER_HAVE_MMAP 1
#endif

namespace fuser {

StatusOr<std::shared_ptr<MappedFile>> MappedFile::Open(
    const std::string& path) {
#if defined(FUSER_HAVE_MMAP)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open for mapping: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat: " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return std::shared_ptr<MappedFile>(new MappedFile(nullptr, 0, true));
  }
  // MAP_PRIVATE: copy-on-write semantics; the loader never writes through
  // the mapping, and later in-place file edits by other processes do not
  // tear data pages already touched.
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference to the inode
  if (addr == MAP_FAILED) {
    return Status::IoError("mmap failed: " + path);
  }
  return std::shared_ptr<MappedFile>(
      new MappedFile(static_cast<char*>(addr), size, true));
#else
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    return Status::IoError("cannot open for mapping: " + path);
  }
  std::fseek(in, 0, SEEK_END);
  const long end = std::ftell(in);
  if (end < 0) {
    std::fclose(in);
    return Status::IoError("cannot stat: " + path);
  }
  std::fseek(in, 0, SEEK_SET);
  const size_t size = static_cast<size_t>(end);
  char* buf = size == 0 ? nullptr : new char[size];
  if (size != 0 && std::fread(buf, 1, size, in) != size) {
    delete[] buf;
    std::fclose(in);
    return Status::IoError("short read: " + path);
  }
  std::fclose(in);
  return std::shared_ptr<MappedFile>(new MappedFile(buf, size, false));
#endif
}

MappedFile::~MappedFile() {
#if defined(FUSER_HAVE_MMAP)
  if (mapped_) {
    if (data_ != nullptr) ::munmap(data_, size_);
    return;
  }
#endif
  delete[] data_;
}

}  // namespace fuser
