#include "synth/motivating_example.h"

#include "common/logging.h"

namespace fuser {

namespace {

struct ExampleTriple {
  const char* subject;
  const char* predicate;
  const char* object;
  bool is_true;
  // Providers as a 5-bit mask, bit i = S(i+1).
  unsigned providers;
};

// The reconstructed Figure 1a grid (see header comment).
constexpr ExampleTriple kTriples[] = {
    {"Obama", "profession", "president", true, 0b11011},        // t1
    {"Obama", "died", "1982", false, 0b00011},                  // t2
    {"Obama", "profession", "lawyer", true, 0b00100},           // t3
    {"Obama", "religion", "Christian", true, 0b11110},          // t4
    {"Obama", "age", "50", false, 0b00110},                     // t5
    {"Obama", "support", "White Sox", true, 0b11001},           // t6
    {"Obama", "spouse", "Michelle", true, 0b00111},             // t7
    {"Obama", "administered by", "John G. Roberts", false, 0b11011},  // t8
    {"Obama", "surgical operation", "05/01/2011", false, 0b11011},    // t9
    {"Obama", "profession", "community organizer", true, 0b11101},    // t10
};

}  // namespace

Dataset MakeMotivatingExample() {
  Dataset dataset;
  for (int s = 1; s <= 5; ++s) {
    dataset.AddSource("S" + std::to_string(s));
  }
  for (const ExampleTriple& et : kTriples) {
    TripleId t = dataset.AddTriple({et.subject, et.predicate, et.object},
                                   "wiki/Barack_Obama");
    dataset.SetLabel(t, et.is_true);
    for (int s = 0; s < 5; ++s) {
      if ((et.providers >> s) & 1) {
        dataset.Provide(static_cast<SourceId>(s), t);
      }
    }
  }
  Status status = dataset.Finalize();
  FUSER_CHECK(status.ok()) << status;
  return dataset;
}

std::vector<SourceQuality> MakeExampleSourceQuality() {
  // Figure 1b precision/recall; q derived via Theorem 3.5 at alpha = 0.5
  // (worked out after Example 3.4 and used in Example 3.3).
  std::vector<SourceQuality> quality(5);
  const double p[5] = {4.0 / 7, 3.0 / 7, 4.0 / 5, 4.0 / 6, 4.0 / 6};
  const double r[5] = {4.0 / 6, 3.0 / 6, 4.0 / 6, 4.0 / 6, 4.0 / 6};
  const double q[5] = {1.0 / 2, 2.0 / 3, 1.0 / 6, 1.0 / 3, 1.0 / 3};
  for (int i = 0; i < 5; ++i) {
    quality[i].precision = p[i];
    quality[i].recall = r[i];
    quality[i].fpr = q[i];
  }
  return quality;
}

std::unique_ptr<ExplicitJointStats> MakeExampleJointStats() {
  const double kAlpha = 0.5;
  std::vector<SourceQuality> single = MakeExampleSourceQuality();
  std::vector<JointQuality> singles(5);
  for (int i = 0; i < 5; ++i) {
    singles[i] = {single[i].precision, single[i].recall, single[i].fpr};
  }
  auto stats = std::make_unique<ExplicitJointStats>(singles, kAlpha);

  auto joint = [](double r, double q) {
    JointQuality jq;
    jq.recall = r;
    jq.fpr = q;
    double den = 0.5 * r + 0.5 * q;
    jq.precision = den > 0.0 ? 0.5 * r / den : 0.5;
    return jq;
  };
  // Example 4.4 "given" parameters: the full set and all leave-one-out
  // subsets (bit i = S(i+1)). The values below reproduce Figure 3's
  // correlation factors and the worked probabilities of Section 4.
  stats->SetJoint(0b11111, joint(0.11, 0.037));   // S1..S5
  stats->SetJoint(0b11110, joint(0.167, 0.037));  // S2,S3,S4,S5
  stats->SetJoint(0b11101, joint(0.22, 0.0552));  // S1,S3,S4,S5
  stats->SetJoint(0b11011, joint(0.22, 0.2216));  // S1,S2,S4,S5
  stats->SetJoint(0b10111, joint(0.109, 0.037));  // S1,S2,S3,S5
  stats->SetJoint(0b01111, joint(0.109, 0.037));  // S1,S2,S3,S4
  return stats;
}

CorrelationModel MakeExampleModel() {
  CorrelationModel model;
  model.alpha = 0.5;
  model.use_scopes = false;
  model.source_quality = MakeExampleSourceQuality();
  model.clustering.clusters = {{0, 1, 2, 3, 4}};
  model.clustering.cluster_of = {0, 0, 0, 0, 0};
  model.clustering.index_in_cluster = {0, 1, 2, 3, 4};
  model.cluster_stats.push_back(MakeExampleJointStats());
  return model;
}

}  // namespace fuser
