// Replay helpers for streaming experiments: slice a finalized dataset into
// a bootstrap prefix plus observation micro-batches, so tests and benches
// can simulate live ingestion against a known end state and compare the
// incrementally-updated engine with one rebuilt from scratch.
#ifndef FUSER_SYNTH_STREAM_REPLAY_H_
#define FUSER_SYNTH_STREAM_REPLAY_H_

#include "common/status.h"
#include "model/dataset.h"

namespace fuser {

/// Rebuilds the prefix [0, hi) of `full` as a standalone finalized dataset.
/// Every source of `full` is registered up front (so streaming the suffix
/// adds observations, not sources); triple ids [0, hi) coincide with
/// `full`'s. Requires 0 < hi <= full.num_triples().
StatusOr<Dataset> PrefixDataset(const Dataset& full, TripleId hi);

/// The observations and gold labels of `full` for triples [lo, hi) as a
/// streaming micro-batch (one Observation per provider).
ObservationBatch BatchForRange(const Dataset& full, TripleId lo, TripleId hi);

}  // namespace fuser

#endif  // FUSER_SYNTH_STREAM_REPLAY_H_
