// The paper's motivating example (Figure 1): ten knowledge triples about
// Barack Obama extracted by five extraction systems.
//
// The provider grid is reconstructed exactly from the constraints published
// in the paper (per-source outputs O1, per-source precision/recall of
// Figure 1b, the joint statistics of Example 2.3, and the per-triple
// provider counts of Figure 1a):
//
//   triple  label  S1 S2 S3 S4 S5
//   t1      true    x  x     x  x     {Obama, profession, president}
//   t2      false   x  x              {Obama, died, 1982}
//   t3      true          x           {Obama, profession, lawyer}
//   t4      true       x  x  x  x     {Obama, religion, Christian}
//   t5      false      x  x           {Obama, age, 50}
//   t6      true    x        x  x     {Obama, support, White Sox}
//   t7      true    x  x  x           {Obama, spouse, Michelle}
//   t8      false   x  x     x  x     {Obama, administered by, John G. Roberts}
//   t9      false   x  x     x  x     {Obama, surgical operation, 05/01/2011}
//   t10     true    x     x  x  x     {Obama, profession, community organizer}
//
// Also provides the exogenous joint parameters of Examples 4.4/4.7/4.10
// (r_12345 = 0.11, q_12345 = 0.037, ...), which the paper assumes "given",
// assembled into an ExplicitJointStats / CorrelationModel for reproducing
// Figure 3 and the worked probabilities.
#ifndef FUSER_SYNTH_MOTIVATING_EXAMPLE_H_
#define FUSER_SYNTH_MOTIVATING_EXAMPLE_H_

#include <memory>

#include "core/correlation_model.h"
#include "core/joint_stats.h"
#include "model/dataset.h"

namespace fuser {

/// Builds the finalized Figure 1 dataset (sources S1..S5, triples t1..t10).
Dataset MakeMotivatingExample();

/// Per-source quality of Figure 1b with the false positive rates derived in
/// Section 3.2 (q = {1/2, 2/3, 1/6, 1/3, 1/3} at alpha = 0.5).
std::vector<SourceQuality> MakeExampleSourceQuality();

/// The joint parameters assumed in Example 4.4 (full set and every
/// leave-one-out subset; other subsets fall back to independence).
/// Cluster-local bit i corresponds to source S(i+1).
std::unique_ptr<ExplicitJointStats> MakeExampleJointStats();

/// A single-cluster correlation model over the example's five sources with
/// the explicit joint statistics above.
CorrelationModel MakeExampleModel();

}  // namespace fuser

#endif  // FUSER_SYNTH_MOTIVATING_EXAMPLE_H_
