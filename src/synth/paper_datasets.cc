#include "synth/paper_datasets.h"

#include "common/random.h"
#include "common/string_util.h"

namespace fuser {

SyntheticConfig ReverbConfig(uint64_t seed) {
  SyntheticConfig config;
  config.num_true = 616;
  config.num_false = 1791;
  config.seed = seed;
  // Six extractors with fairly low precision and recall (Figure 4a
  // regime). Precisions straddle alpha = 0.5: with p < alpha for *every*
  // source, Theorem 3.5 makes every source "bad" (q > r) and
  // independence-based fusion inverts, which contradicts the PrecRec
  // quality the paper reports on this dataset.
  const char* names[6] = {"reverb-a", "reverb-b", "reverb-c",
                          "reverb-d", "reverb-e", "reverb-f"};
  const double precision[6] = {0.50, 0.44, 0.60, 0.42, 0.52, 0.56};
  const double recall[6] = {0.45, 0.30, 0.50, 0.25, 0.40, 0.35};
  config.sources.resize(6);
  for (int s = 0; s < 6; ++s) {
    config.sources[s].name = names[s];
    config.sources[s].precision = precision[s];
    config.sources[s].recall = recall[s];
  }
  // True triples: a correlated pair and a correlated 3-group (shared
  // extraction patterns).
  config.groups_true = {{{0, 1}, 0.75}, {{2, 3, 4}, 0.65}};
  // False triples: two correlated pairs (common extraction mistakes).
  config.groups_false = {{{0, 2}, 0.7}, {{1, 3}, 0.7}};
  // Source f makes its own kind of mistakes: an exclusive 20% slice of the
  // false universe, making it anti-correlated with every other source on
  // false triples.
  config.false_partition_fractions = {0.8, 0.2};
  for (int s = 0; s < 5; ++s) config.sources[s].false_partition = 0;
  config.sources[5].false_partition = 1;
  return config;
}

SyntheticConfig RestaurantConfig(uint64_t seed) {
  SyntheticConfig config;
  config.num_true = 68;
  config.num_false = 25;
  config.seed = seed;
  const char* names[7] = {"yelp",        "foursquare", "opentable",
                          "mturk",       "yellowpages", "citysearch",
                          "menupages"};
  const double precision[7] = {0.95, 0.92, 0.90, 0.88, 0.93, 0.90, 0.94};
  const double recall[7] = {0.85, 0.80, 0.75, 0.70, 0.45, 0.45, 0.60};
  config.sources.resize(7);
  for (int s = 0; s < 7; ++s) {
    config.sources[s].name = names[s];
    config.sources[s].precision = precision[s];
    config.sources[s].recall = recall[s];
  }
  // A 4-group strongly correlated on true triples (aggregators sharing
  // upstream feeds).
  config.groups_true = {{{0, 1, 2, 3}, 0.7}};
  // An anti-correlated pair on true triples: yellowpages and citysearch
  // cover complementary halves of the restaurants.
  config.true_partition_fractions = {0.5, 0.5};
  config.sources[4].true_partition = 0;
  config.sources[5].true_partition = 1;
  // A 6-group correlated on false triples (shared stale listings).
  config.groups_false = {{{0, 1, 2, 4, 5, 6}, 0.75}};
  return config;
}

BookSimConfig BookConfig(uint64_t seed) {
  BookSimConfig config;
  config.seed = seed;
  // Cluster structure reported in Section 5.1: one large copying cartel
  // (~22 sellers) plus several small ones.
  BookSimConfig::CopyGroup big;
  for (size_t s = 0; s < 22; ++s) big.members.push_back(s);
  big.rho = 0.85;
  config.groups = {big,
                   {{30, 31, 32}, 0.85},
                   {{40, 41}, 0.9},
                   {{50, 51}, 0.9},
                   {{60, 61, 62}, 0.85}};
  return config;
}

StatusOr<Dataset> MakeReverbDataset(uint64_t seed) {
  return GenerateSynthetic(ReverbConfig(seed));
}

StatusOr<Dataset> MakeRestaurantDataset(uint64_t seed) {
  return GenerateSynthetic(RestaurantConfig(seed));
}

StatusOr<Dataset> MakeBookDatasetFromConfig(const BookSimConfig& config) {
  if (config.num_sellers == 0 || config.num_books == 0) {
    return Status::InvalidArgument("need sellers and books");
  }
  if (config.num_gold_books > config.num_books ||
      config.num_gold_sellers > config.num_sellers) {
    return Status::InvalidArgument("gold subset larger than universe");
  }
  Rng rng(config.seed ^ 0xB00C5EEDULL);

  // Books: 1-3 true authors (mean ~2.1) and 3-6 false variants (mean
  // ~4.2), giving ~6.3 labeled triples per gold book as in the real
  // dataset (1417 triples over 225 books).
  struct Book {
    std::vector<TripleId> true_authors;
    std::vector<TripleId> false_variants;
  };
  Dataset dataset;
  std::vector<std::string> seller_names(config.num_sellers);
  for (size_t s = 0; s < config.num_sellers; ++s) {
    dataset.AddSource(StrFormat("seller-%03zu", s));
  }
  std::vector<Book> books(config.num_books);
  for (size_t b = 0; b < config.num_books; ++b) {
    const bool gold = b < config.num_gold_books;
    const std::string domain = StrFormat("book%zu", b);
    size_t n_true = 1 + rng.NextBounded(3);   // 1..3
    size_t n_false = 3 + rng.NextBounded(4);  // 3..6
    for (size_t k = 0; k < n_true; ++k) {
      TripleId t = dataset.AddTriple(
          {StrFormat("book%zu", b), "author", StrFormat("author-%zu", k)},
          domain);
      if (gold) dataset.SetLabel(t, true);
      books[b].true_authors.push_back(t);
    }
    for (size_t k = 0; k < n_false; ++k) {
      TripleId t = dataset.AddTriple({StrFormat("book%zu", b), "author",
                                      StrFormat("wrong-author-%zu", k)},
                                     domain);
      if (gold) dataset.SetLabel(t, false);
      books[b].false_variants.push_back(t);
    }
  }

  // Seller profiles: listing volume and accuracy (precision), widely
  // varying, skewed high.
  std::vector<double> accuracy(config.num_sellers);
  std::vector<size_t> volume(config.num_sellers);
  for (size_t s = 0; s < config.num_sellers; ++s) {
    double u = rng.NextDouble();
    if (u < 0.4) {
      accuracy[s] = 0.7 + 0.25 * rng.NextDouble();
    } else if (u < 0.75) {
      accuracy[s] = 0.45 + 0.25 * rng.NextDouble();
    } else {
      accuracy[s] = 0.15 + 0.3 * rng.NextDouble();
    }
    volume[s] = config.min_listings +
                rng.NextBounded(config.max_listings - config.min_listings +
                                1);
  }

  // Copying groups: a leader's listings and claims are replicated by the
  // members with probability rho per book.
  std::vector<int> group_of(config.num_sellers, -1);
  for (size_t g = 0; g < config.groups.size(); ++g) {
    for (size_t m : config.groups[g].members) {
      if (m >= config.num_sellers) {
        return Status::InvalidArgument("group member out of range");
      }
      if (group_of[m] >= 0) {
        return Status::InvalidArgument("seller in two copy groups");
      }
      group_of[m] = static_cast<int>(g);
    }
  }

  // Claims of a seller for a book it lists: the set of provided triples.
  auto draw_claims = [&](size_t seller, size_t b, Rng* r) {
    std::vector<TripleId> claims;
    const Book& book = books[b];
    bool any_correct = false;
    for (TripleId t : book.true_authors) {
      if (r->NextBernoulli(accuracy[seller])) {
        claims.push_back(t);
        any_correct = true;
      }
    }
    // A seller that misses the true authors asserts a wrong variant; even
    // correct sellers occasionally add one.
    bool add_wrong = !any_correct || r->NextBernoulli(0.25);
    if (add_wrong && !book.false_variants.empty()) {
      claims.push_back(book.false_variants[r->NextBounded(
          book.false_variants.size())]);
    }
    return claims;
  };

  // Leaders' listings/claims drawn first so members can copy them.
  std::vector<std::vector<size_t>> leader_books(config.groups.size());
  std::vector<std::unordered_map<size_t, std::vector<TripleId>>>
      leader_claims(config.groups.size());
  for (size_t g = 0; g < config.groups.size(); ++g) {
    size_t leader = config.groups[g].members.front();
    const bool gold_seller = leader < config.num_gold_sellers;
    size_t lo = gold_seller ? 0 : config.num_gold_books;
    size_t span = config.num_books - lo;
    auto picks = rng.SampleWithoutReplacement(
        span, std::min(volume[leader], span));
    for (size_t p : picks) {
      size_t b = lo + p;
      leader_books[g].push_back(b);
      leader_claims[g][b] = draw_claims(leader, b, &rng);
    }
  }

  for (size_t s = 0; s < config.num_sellers; ++s) {
    const bool gold_seller = s < config.num_gold_sellers;
    // Non-gold sellers list only non-gold books, so exactly the first
    // num_gold_sellers sellers can appear in the gold standard.
    size_t lo = gold_seller ? 0 : config.num_gold_books;
    size_t span = config.num_books - lo;
    int g = group_of[s];
    if (g >= 0) {
      double rho = config.groups[static_cast<size_t>(g)].rho;
      // Copy the leader's catalog and claims.
      for (size_t b : leader_books[static_cast<size_t>(g)]) {
        if (!rng.NextBernoulli(rho)) continue;
        if (!gold_seller && b < config.num_gold_books) continue;
        for (TripleId t : leader_claims[static_cast<size_t>(g)][b]) {
          dataset.Provide(static_cast<SourceId>(s), t);
        }
      }
      // Plus a smaller independent tail.
      auto picks = rng.SampleWithoutReplacement(
          span, std::min(volume[s] / 4, span));
      for (size_t p : picks) {
        size_t b = lo + p;
        for (TripleId t : draw_claims(s, b, &rng)) {
          dataset.Provide(static_cast<SourceId>(s), t);
        }
      }
    } else {
      auto picks =
          rng.SampleWithoutReplacement(span, std::min(volume[s], span));
      for (size_t p : picks) {
        size_t b = lo + p;
        for (TripleId t : draw_claims(s, b, &rng)) {
          dataset.Provide(static_cast<SourceId>(s), t);
        }
      }
    }
  }
  FUSER_RETURN_IF_ERROR(dataset.Finalize());
  return dataset;
}

StatusOr<Dataset> MakeBookDataset(uint64_t seed) {
  return MakeBookDatasetFromConfig(BookConfig(seed));
}

}  // namespace fuser
