// Synthetic workload generator (Section 5.2).
//
// Generates a universe of true and false triples and samples each source's
// output so that configured marginal precision/recall targets hold in
// expectation, with optional correlation structure:
//
//  * positive correlation groups (separately on true and on false triples)
//    via a shared two-level Bernoulli latent: for a group with strength
//    rho in (0, 1], a per-triple group coin g ~ Bern(lambda) is flipped and
//    member i provides with probability a_i if g = 1, b_i otherwise, chosen
//    to preserve i's marginal rate; rho -> 1 approaches replication
//    (Scenario 1/2/3 of Example 4.1);
//  * anti-correlation via partitions: a source restricted to partition k of
//    the true (false) universe never overlaps sources restricted to other
//    partitions on that class (Scenario 4, complementary sources);
//  * partial gold labels: only a configured number of true/false triples
//    carry labels (training data), the rest are scored but unlabeled;
//  * gold_activity: per-source multiplier on the probability of providing
//    *labeled* triples, to model sources absent from the gold standard
//    (the BOOK dataset has 879 sources of which 333 appear in the gold).
//
// Triples not provided by any source are dropped (only observed triples
// enter a dataset). All randomness is seeded and reproducible.
#ifndef FUSER_SYNTH_GENERATOR_H_
#define FUSER_SYNTH_GENERATOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/dataset.h"

namespace fuser {

struct SourceProfile {
  std::string name;
  /// Target precision over the source's provided triples.
  double precision = 0.8;
  /// Target recall over the true universe.
  double recall = 0.5;
  /// Partition of the true universe this source draws from (-1 = all).
  int true_partition = -1;
  /// Partition of the false universe this source draws from (-1 = all).
  int false_partition = -1;
  /// Multiplier on the provide-probability for labeled triples.
  double gold_activity = 1.0;
};

struct GroupSpec {
  std::vector<size_t> members;  // indices into SyntheticConfig::sources
  double rho = 0.5;             // correlation strength in (0, 1]
};

struct SyntheticConfig {
  size_t num_true = 250;
  size_t num_false = 750;
  /// Number of true/false triples carrying gold labels; values >= universe
  /// size label everything.
  size_t labeled_true = SIZE_MAX;
  size_t labeled_false = SIZE_MAX;
  std::vector<SourceProfile> sources;
  /// Positive-correlation groups; a source may appear in at most one group
  /// per class.
  std::vector<GroupSpec> groups_true;
  std::vector<GroupSpec> groups_false;
  /// Partition fractions (must sum to ~1 when non-empty); e.g. {0.8, 0.2}
  /// reserves 20% of the class universe for partition 1.
  std::vector<double> true_partition_fractions;
  std::vector<double> false_partition_fractions;
  /// Attach domain names "part<k>" by true/false partition, enabling
  /// scope-aware experiments. Default: one global domain.
  bool assign_domains_by_partition = false;
  /// When > 0, spread triples round-robin over this many entity domains
  /// ("dom<k>"), so that a source is in scope only for entities it covers
  /// (e.g. books a seller lists). True and false triples with the same
  /// index share a domain, modeling conflicting claims about one entity.
  size_t num_domains = 0;
  uint64_t seed = 1;
};

/// Convenience: n identical independent sources (Figure 6 setups).
SyntheticConfig MakeIndependentConfig(size_t num_sources, size_t num_triples,
                                      double fraction_true, double precision,
                                      double recall, uint64_t seed);

/// Scale harness for sketch-based discovery: `num_sources` sources (think
/// hundreds to ~1024) with varied precision, recall capped so provider
/// lists stay bounded (~32 sources per triple regardless of source
/// count), and injected positive-correlation groups of 4 consecutive
/// sources — one group per 64 sources, alternating between the true and
/// false class — so discovery has planted signal to find at every scale.
SyntheticConfig MakeManySourcesConfig(size_t num_sources, size_t num_triples,
                                      uint64_t seed);

/// One generated observed triple, handed to a streaming sink. The pointers
/// refer to buffers owned by the generator and are only valid during the
/// sink call — copy what you keep.
struct SyntheticTriple {
  Triple triple;
  /// Interned domain name ("" = the single global domain); one table entry
  /// per domain, not a fresh string per triple.
  const std::string* domain = nullptr;
  bool labeled = false;
  bool is_true = false;
  /// Providing sources, ascending; never empty (unobserved triples are
  /// skipped before the sink sees them).
  const std::vector<SourceId>* providers = nullptr;
};

using SyntheticSink = std::function<Status(const SyntheticTriple&)>;

/// Streaming form of GenerateSynthetic: emits each observed triple to
/// `sink` in generation order (true universe then false universe) without
/// materializing any per-corpus vectors, so 10-100M-triple corpora generate
/// in O(sources) memory. Draws the exact same random sequence as
/// GenerateSynthetic: building a dataset from the emitted stream reproduces
/// GenerateSynthetic(config) triple for triple. A sink error aborts
/// generation and is returned as-is.
Status GenerateSyntheticStream(const SyntheticConfig& config,
                               const SyntheticSink& sink);

/// Generates a finalized dataset from `config`.
StatusOr<Dataset> GenerateSynthetic(const SyntheticConfig& config);

}  // namespace fuser

#endif  // FUSER_SYNTH_GENERATOR_H_
