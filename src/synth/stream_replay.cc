#include "synth/stream_replay.h"

namespace fuser {

StatusOr<Dataset> PrefixDataset(const Dataset& full, TripleId hi) {
  if (!full.finalized()) {
    return Status::FailedPrecondition("dataset not finalized");
  }
  if (hi == 0 || hi > full.num_triples()) {
    return Status::InvalidArgument("prefix bound out of range");
  }
  Dataset d;
  for (SourceId s = 0; s < full.num_sources(); ++s) {
    d.AddSource(full.source_name(s));
  }
  for (TripleId t = 0; t < hi; ++t) {
    TripleId nt =
        d.AddTriple(full.triple(t), full.domain_name(full.domain(t)));
    for (SourceId s : full.providers(t)) d.Provide(s, nt);
    if (full.label(t) != Label::kUnknown) {
      d.SetLabel(nt, full.label(t) == Label::kTrue);
    }
  }
  FUSER_RETURN_IF_ERROR(d.Finalize());
  return d;
}

ObservationBatch BatchForRange(const Dataset& full, TripleId lo,
                               TripleId hi) {
  ObservationBatch batch;
  for (TripleId t = lo; t < hi && t < full.num_triples(); ++t) {
    const Triple triple(full.triple(t));
    const std::string domain(full.domain_name(full.domain(t)));
    for (SourceId s : full.providers(t)) {
      batch.observations.push_back(
          {std::string(full.source_name(s)), triple, domain});
    }
    if (full.label(t) != Label::kUnknown) {
      batch.labels.push_back({triple, full.label(t) == Label::kTrue});
    }
  }
  return batch;
}

}  // namespace fuser
