// Simulators for the paper's three real-world datasets (Section 5.1).
//
// The originals (ReVerb ClueWeb extractions, the Restaurant aggregation of
// [17], and the AbeBooks crawl of [6]) are not redistributable, so each
// simulator reproduces the published *sufficient statistics* instead: the
// number of sources, the gold-standard size and composition, the per-source
// precision/recall regime, and the correlation structure the paper reports
// discovering ("Discovered correlations", Section 5.1). Every fusion
// algorithm consumes only the observation matrix plus gold labels, so
// matching these statistics preserves the experiments' qualitative shape.
//
//   REVERB      6 extractors, 2407 gold triples (616 true / 1791 false),
//               low precision & recall; on true triples one 2-group and one
//               3-group strongly correlated; on false triples two pairs
//               correlated and one source anti-correlated with all others
//               (modeled by an exclusive false-partition).
//   RESTAURANT  7 sources, 93 gold triples (68 true / 25 false), high
//               precision, mostly high recall; a 4-group correlated on
//               true, one anti-correlated pair (split true-partitions), a
//               6-group correlated on false.
//   BOOK        879 seller sources of which ~333 appear in the gold
//               standard; 5900 triples with 1417 labeled (482 true / 935
//               false); widely varying precision, low recall; cluster
//               structure with one large (~22) and several small groups on
//               each class.
#ifndef FUSER_SYNTH_PAPER_DATASETS_H_
#define FUSER_SYNTH_PAPER_DATASETS_H_

#include "common/status.h"
#include "model/dataset.h"
#include "synth/generator.h"

namespace fuser {

/// Configuration used by the simulators, exposed so benches/tests can scale
/// them down. (BOOK uses a dedicated claim-based generator rather than the
/// generic SyntheticConfig; see BookSimConfig.)
SyntheticConfig ReverbConfig(uint64_t seed);
SyntheticConfig RestaurantConfig(uint64_t seed);

/// Claim-based BOOK simulator: sellers list books and assert author
/// variants. A seller in scope for a book (it lists the book) claims each
/// true author with probability `accuracy` and otherwise asserts one of
/// the book's false variants. Copying groups share listing sets and false
/// claims, producing the cluster structure of Section 5.1.
struct BookSimConfig {
  size_t num_books = 1000;
  size_t num_gold_books = 225;
  size_t num_sellers = 879;
  size_t num_gold_sellers = 333;  // sellers allowed to list gold books
  size_t min_listings = 5;
  size_t max_listings = 90;
  /// Copying groups over gold sellers (member indices < num_gold_sellers)
  /// with copy probability rho.
  struct CopyGroup {
    std::vector<size_t> members;
    double rho = 0.8;
  };
  std::vector<CopyGroup> groups;
  uint64_t seed = 42;
};

BookSimConfig BookConfig(uint64_t seed);

StatusOr<Dataset> MakeReverbDataset(uint64_t seed = 42);
StatusOr<Dataset> MakeRestaurantDataset(uint64_t seed = 42);
StatusOr<Dataset> MakeBookDataset(uint64_t seed = 42);
StatusOr<Dataset> MakeBookDatasetFromConfig(const BookSimConfig& config);

}  // namespace fuser

#endif  // FUSER_SYNTH_PAPER_DATASETS_H_
