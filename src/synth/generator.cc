#include "synth/generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"

namespace fuser {

namespace {

/// Per-class view of the generation problem (the machinery is identical
/// for true and false triples; only the per-source marginal rates differ).
struct ClassPlan {
  size_t universe = 0;
  size_t labeled = 0;
  std::vector<double> rate;          // marginal provide-probability
  std::vector<int> partition;        // -1 = unrestricted
  std::vector<double> fractions;     // partition fractions
  const std::vector<GroupSpec>* groups = nullptr;
};

Status ValidateGroups(const std::vector<GroupSpec>& groups, size_t n) {
  std::vector<bool> seen(n, false);
  for (const GroupSpec& g : groups) {
    if (g.rho <= 0.0 || g.rho > 1.0) {
      return Status::InvalidArgument("group rho must be in (0, 1]");
    }
    if (g.members.size() < 2) {
      return Status::InvalidArgument("group needs >= 2 members");
    }
    for (size_t m : g.members) {
      if (m >= n) {
        return Status::InvalidArgument("group member out of range");
      }
      if (seen[m]) {
        return Status::InvalidArgument(
            "source in more than one group of the same class");
      }
      seen[m] = true;
    }
  }
  return Status::OK();
}

/// Partition id for triple index i in a class universe of size `universe`
/// split by `fractions` (empty = single partition 0).
int PartitionOfIndex(size_t i, size_t universe,
                     const std::vector<double>& fractions) {
  if (fractions.empty()) return 0;
  double position = static_cast<double>(i) / static_cast<double>(universe);
  double accum = 0.0;
  for (size_t k = 0; k < fractions.size(); ++k) {
    accum += fractions[k];
    if (position < accum) return static_cast<int>(k);
  }
  return static_cast<int>(fractions.size()) - 1;
}

}  // namespace

SyntheticConfig MakeIndependentConfig(size_t num_sources, size_t num_triples,
                                      double fraction_true, double precision,
                                      double recall, uint64_t seed) {
  SyntheticConfig config;
  config.num_true =
      static_cast<size_t>(fraction_true * static_cast<double>(num_triples) +
                          0.5);
  config.num_false = num_triples - config.num_true;
  config.sources.resize(num_sources);
  for (size_t s = 0; s < num_sources; ++s) {
    config.sources[s].name = StrFormat("source-%zu", s);
    config.sources[s].precision = precision;
    config.sources[s].recall = recall;
  }
  config.seed = seed;
  return config;
}

SyntheticConfig MakeManySourcesConfig(size_t num_sources, size_t num_triples,
                                      uint64_t seed) {
  const double recall =
      std::min(0.45, 32.0 / std::max<double>(1.0, num_sources));
  SyntheticConfig config =
      MakeIndependentConfig(num_sources, num_triples, /*fraction_true=*/0.4,
                            /*precision=*/0.7, recall, seed);
  // Vary precision deterministically so marginals differ across sources.
  for (size_t s = 0; s < num_sources; ++s) {
    config.sources[s].precision = 0.6 + 0.25 * static_cast<double>(s % 8) / 7.0;
  }
  // One planted group of 4 consecutive sources per 64 sources (at least
  // one), alternating class so both C and C! have signal.
  const size_t num_groups = std::max<size_t>(1, num_sources / 64);
  for (size_t g = 0; g < num_groups; ++g) {
    const size_t base = g * 64;
    if (base + 4 > num_sources) break;
    GroupSpec spec;
    spec.members = {base, base + 1, base + 2, base + 3};
    spec.rho = 0.85;
    if (g % 2 == 0) {
      config.groups_true.push_back(spec);
    } else {
      spec.rho = 0.8;
      config.groups_false.push_back(spec);
    }
  }
  return config;
}

Status GenerateSyntheticStream(const SyntheticConfig& config,
                               const SyntheticSink& sink) {
  const size_t n = config.sources.size();
  if (n == 0) {
    return Status::InvalidArgument("no sources configured");
  }
  if (config.num_true == 0 || config.num_false == 0) {
    return Status::InvalidArgument("need both true and false triples");
  }
  for (const SourceProfile& sp : config.sources) {
    if (sp.precision <= 0.0 || sp.precision > 1.0) {
      return Status::InvalidArgument("precision must be in (0, 1]");
    }
    if (sp.recall < 0.0 || sp.recall > 1.0) {
      return Status::InvalidArgument("recall must be in [0, 1]");
    }
    if (sp.gold_activity < 0.0 || sp.gold_activity > 1.0) {
      return Status::InvalidArgument("gold_activity must be in [0, 1]");
    }
  }
  FUSER_RETURN_IF_ERROR(ValidateGroups(config.groups_true, n));
  FUSER_RETURN_IF_ERROR(ValidateGroups(config.groups_false, n));

  // Per-source marginal rates. True side: recall scaled up inside a
  // partition so overall recall stays near target. False side: the rate
  // that yields the target precision given the expected number of provided
  // true triples: #false = #true_provided * (1-p)/p.
  ClassPlan true_plan;
  true_plan.universe = config.num_true;
  true_plan.labeled = std::min(config.labeled_true, config.num_true);
  true_plan.fractions = config.true_partition_fractions;
  true_plan.groups = &config.groups_true;
  ClassPlan false_plan;
  false_plan.universe = config.num_false;
  false_plan.labeled = std::min(config.labeled_false, config.num_false);
  false_plan.fractions = config.false_partition_fractions;
  false_plan.groups = &config.groups_false;

  for (size_t s = 0; s < n; ++s) {
    const SourceProfile& sp = config.sources[s];
    double true_fraction = 1.0;
    if (sp.true_partition >= 0) {
      if (static_cast<size_t>(sp.true_partition) >=
          std::max<size_t>(1, config.true_partition_fractions.size())) {
        return Status::InvalidArgument("true_partition out of range");
      }
      true_fraction =
          config.true_partition_fractions[static_cast<size_t>(
              sp.true_partition)];
    }
    double false_fraction = 1.0;
    if (sp.false_partition >= 0) {
      if (static_cast<size_t>(sp.false_partition) >=
          std::max<size_t>(1, config.false_partition_fractions.size())) {
        return Status::InvalidArgument("false_partition out of range");
      }
      false_fraction =
          config.false_partition_fractions[static_cast<size_t>(
              sp.false_partition)];
    }
    double true_rate = std::min(1.0, sp.recall / std::max(true_fraction,
                                                          1e-9));
    double expected_true = sp.recall * static_cast<double>(config.num_true);
    double expected_false =
        expected_true * (1.0 - sp.precision) / sp.precision;
    double false_rate = std::min(
        1.0, expected_false / std::max(false_fraction *
                                           static_cast<double>(
                                               config.num_false),
                                       1e-9));
    true_plan.rate.push_back(true_rate);
    false_plan.rate.push_back(false_rate);
    true_plan.partition.push_back(sp.true_partition);
    false_plan.partition.push_back(sp.false_partition);
  }

  Rng rng(config.seed);

  // Interned domain-name table: one string per entity domain instead of a
  // fresh StrFormat allocation per triple (a large-N hot spot).
  static const std::string kNoDomain;
  std::vector<std::string> entity_domains;
  if (!config.assign_domains_by_partition && config.num_domains > 0) {
    entity_domains.reserve(config.num_domains);
    for (size_t d = 0; d < config.num_domains; ++d) {
      entity_domains.push_back(StrFormat("dom%zu", d));
    }
  }

  // Reused per-triple buffers; the sink only sees pointers into them.
  std::vector<SourceId> providers;
  providers.reserve(n);
  std::vector<bool> coin;
  SyntheticTriple record;
  record.triple.predicate = "attr";
  record.providers = &providers;

  auto generate_class = [&](const ClassPlan& plan, bool is_true) -> Status {
    // Group latent parameters per member: lambda (group coin rate) and the
    // conditional rates (a, b) preserving the member's marginal.
    struct MemberLatent {
      double a = 0.0;
      double b = 0.0;
    };
    std::vector<double> group_lambda(plan.groups->size(), 0.0);
    std::vector<std::vector<MemberLatent>> latents(plan.groups->size());
    std::vector<int> group_of(n, -1);
    std::vector<size_t> index_in_group(n, 0);
    for (size_t g = 0; g < plan.groups->size(); ++g) {
      const GroupSpec& spec = (*plan.groups)[g];
      double mean_rate = 0.0;
      for (size_t m : spec.members) mean_rate += plan.rate[m];
      mean_rate /= static_cast<double>(spec.members.size());
      double lambda = std::clamp(mean_rate, 1e-6, 1.0 - 1e-6);
      group_lambda[g] = lambda;
      latents[g].resize(spec.members.size());
      for (size_t j = 0; j < spec.members.size(); ++j) {
        size_t m = spec.members[j];
        group_of[m] = static_cast<int>(g);
        index_in_group[m] = j;
        double pi = plan.rate[m];
        // a = rate when the group coin fires; marginal lambda*a+(1-lambda)*b
        // = pi requires a <= pi/lambda.
        double a = std::min(pi / lambda, pi + spec.rho * (1.0 - pi));
        double b = (pi - lambda * a) / (1.0 - lambda);
        latents[g][j] = {a, std::max(b, 0.0)};
      }
    }

    // Per-partition domain names for this class (interned once).
    std::vector<std::string> partition_domains;
    if (config.assign_domains_by_partition) {
      const size_t num_partitions =
          std::max<size_t>(1, plan.fractions.size());
      partition_domains.reserve(num_partitions);
      for (size_t k = 0; k < num_partitions; ++k) {
        partition_domains.push_back(StrFormat("part%zu", k));
      }
    }

    coin.assign(plan.groups->size(), false);
    for (size_t i = 0; i < plan.universe; ++i) {
      const int triple_partition =
          PartitionOfIndex(i, plan.universe, plan.fractions);
      const bool labeled = i < plan.labeled;
      // Group coins for this triple.
      for (size_t g = 0; g < plan.groups->size(); ++g) {
        coin[g] = rng.NextBernoulli(group_lambda[g]);
      }
      providers.clear();
      for (size_t s = 0; s < n; ++s) {
        int sp_partition = plan.partition[s];
        if (sp_partition >= 0 && sp_partition != triple_partition) {
          continue;  // outside this source's slice of the universe
        }
        double rate;
        if (group_of[s] >= 0) {
          const MemberLatent& lat =
              latents[static_cast<size_t>(group_of[s])][index_in_group[s]];
          rate = coin[static_cast<size_t>(group_of[s])] ? lat.a : lat.b;
        } else {
          rate = plan.rate[s];
        }
        if (labeled) {
          rate *= config.sources[s].gold_activity;
        }
        if (rng.NextBernoulli(rate)) {
          providers.push_back(static_cast<SourceId>(s));
        }
      }
      if (providers.empty()) {
        continue;  // unobserved triples do not exist in the dataset
      }
      record.triple.subject = StrFormat("e%s%zu", is_true ? "t" : "f", i);
      record.triple.object = StrFormat("v%zu", i);
      if (config.assign_domains_by_partition) {
        record.domain =
            &partition_domains[static_cast<size_t>(triple_partition)];
      } else if (config.num_domains > 0) {
        record.domain = &entity_domains[i % config.num_domains];
      } else {
        record.domain = &kNoDomain;
      }
      record.labeled = labeled;
      record.is_true = is_true;
      FUSER_RETURN_IF_ERROR(sink(record));
    }
    return Status::OK();
  };

  FUSER_RETURN_IF_ERROR(generate_class(true_plan, /*is_true=*/true));
  return generate_class(false_plan, /*is_true=*/false);
}

StatusOr<Dataset> GenerateSynthetic(const SyntheticConfig& config) {
  Dataset dataset;
  const size_t n = config.sources.size();
  for (size_t s = 0; s < n; ++s) {
    dataset.AddSource(config.sources[s].name.empty()
                          ? StrFormat("source-%zu", s)
                          : config.sources[s].name);
  }
  FUSER_RETURN_IF_ERROR(GenerateSyntheticStream(
      config, [&](const SyntheticTriple& synthetic) -> Status {
        const TripleId t =
            dataset.AddTriple(synthetic.triple, *synthetic.domain);
        if (synthetic.labeled) {
          dataset.SetLabel(t, synthetic.is_true);
        }
        for (SourceId s : *synthetic.providers) {
          dataset.Provide(s, t);
        }
        return Status::OK();
      }));
  FUSER_RETURN_IF_ERROR(dataset.Finalize());
  return dataset;
}

}  // namespace fuser
