// Sketch-based approximate pairwise correlation discovery.
//
// Exact discovery (core/correlation.h) intersects every source pair's
// full labeled bitsets: O(S^2 * m/64) word operations, the last
// superlinear wall as the source count grows. Following the coordinated
// sampling idea of Correlation Sketches (Santos et al., arXiv 2104.03353),
// this module estimates the O(S^2) joint counts from one shared bottom-k
// (KMV-style) sample per class instead:
//
//  * every labeled training triple id is hashed once with a fixed seed;
//    the k smallest hashes of each class (true / false) form the sample —
//    because the hash is shared, every source's sample is *coordinated*:
//    pair overlap within the sample is an unbiased picture of pair
//    overlap in the class;
//  * per source, one compact bit row over the sampled positions is filled
//    in a single pass over the samples' provider lists;
//  * a pair's joint count is then estimated as
//        (sampled joint overlap) * (class size / k)
//    with the same AND+popcount kernel as the exact path, but over k bits
//    instead of m — O(S^2 * k/64) total.
//
// The sampled joint *rate* obeys a Hoeffding/Serfling bound (sampling
// without replacement): |p_hat - p| <= sqrt(ln(2/delta) / (2k)) with
// probability >= 1 - delta per pair. Marginals (r_i, q_i) stay exact —
// they are linear-cost — so only the joint counts carry sampling error,
// and ComputePairwiseCorrelationsApprox re-scores the top-k most
// significant pairs with the exact bitset oracle before returning.
#ifndef FUSER_STATS_CORRELATION_SKETCH_H_
#define FUSER_STATS_CORRELATION_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "common/status.h"
#include "core/correlation.h"
#include "model/dataset.h"

namespace fuser {

/// Options of the approximate discovery mode.
struct ApproxOptions {
  /// Bottom-k sample size per class. Larger = tighter error bound
  /// (~1/sqrt(k)) and slower; 2048 bounds the joint-rate error at ~0.049
  /// per pair at delta = 1e-4.
  size_t sketch_size = 2048;
  /// Absolute error bound on estimated joint rates asserted by callers;
  /// 0 derives it from sketch_size via SketchErrorBound(sketch_size,
  /// delta).
  double error_bound = 0.0;
  /// Per-pair failure probability behind the derived bound.
  double delta = 1e-4;
  /// The top-k pairs by significance are re-scored with the exact bitset
  /// oracle (their returned counts carry no sampling error). 0 disables
  /// the exact pass.
  size_t exact_top_k = 64;
  /// Sampling hash seed; fixed so runs are reproducible.
  uint64_t seed = 0x5EEDC0DEULL;
};

/// Hoeffding/Serfling bound on |estimated - true| joint *rate* for a
/// bottom-k sample of size `sketch_size`: sqrt(ln(2/delta) / (2k)). Holds
/// per pair with probability >= 1 - delta; sampling without replacement
/// only tightens it.
double SketchErrorBound(size_t sketch_size, double delta);

/// Coordinated per-source samples of the labeled training triples, one
/// bit row per source over the sampled positions of each class.
class CorrelationSketch {
 public:
  /// Builds the sketch: hashes the labeled training triple ids, keeps the
  /// bottom `sketch_size` per class, and fills the per-source rows in one
  /// pass over the sampled triples' provider lists. `sources` are global
  /// ids; row indices below are positions in this vector.
  static StatusOr<CorrelationSketch> Build(const Dataset& dataset,
                                           const DynamicBitset& train_mask,
                                           const std::vector<SourceId>& sources,
                                           size_t sketch_size, uint64_t seed);

  size_t num_sources() const { return num_sources_; }
  /// Realized sample sizes (== min(sketch_size, class size)).
  size_t sampled_true() const { return k_true_; }
  size_t sampled_false() const { return k_false_; }
  /// Class sizes the estimates are scaled to.
  size_t total_true() const { return total_true_; }
  size_t total_false() const { return total_false_; }

  /// Raw joint overlap within the sample for the pair at row positions
  /// (a, b).
  size_t SampledJointTrue(size_t a, size_t b) const {
    return JointCount(bits_true_, words_true_, a, b);
  }
  size_t SampledJointFalse(size_t a, size_t b) const {
    return JointCount(bits_false_, words_false_, a, b);
  }

  /// Joint-count estimates scaled to the full class:
  /// sampled * (total / k). Exact when the sample is exhaustive (class
  /// size <= sketch_size).
  double EstimateJointTrue(size_t a, size_t b) const {
    return static_cast<double>(SampledJointTrue(a, b)) * scale_true_;
  }
  double EstimateJointFalse(size_t a, size_t b) const {
    return static_cast<double>(SampledJointFalse(a, b)) * scale_false_;
  }

  /// Scale factors class_total / k applied by the estimators (1 when the
  /// sample is exhaustive).
  double scale_true() const { return scale_true_; }
  double scale_false() const { return scale_false_; }

  /// Raw row storage for hot loops: source i's row of class bits starts
  /// at `*_rows() + i * *_row_words()`. Rows are 64-byte aligned.
  const uint64_t* true_rows() const { return bits_true_.data(); }
  const uint64_t* false_rows() const { return bits_false_.data(); }
  size_t true_row_words() const { return words_true_; }
  size_t false_row_words() const { return words_false_; }

  /// Default-constructed sketches are empty (StatusOr requires this);
  /// use Build().
  CorrelationSketch() = default;

 private:
  size_t JointCount(const AlignedWordVector& bits, size_t words, size_t a,
                    size_t b) const;

  size_t num_sources_ = 0;
  size_t k_true_ = 0;
  size_t k_false_ = 0;
  size_t total_true_ = 0;
  size_t total_false_ = 0;
  double scale_true_ = 1.0;
  double scale_false_ = 1.0;
  /// Row stride in words, rounded up to a multiple of 8 so every row
  /// starts 64-byte aligned within the aligned backing vector.
  size_t words_true_ = 0;
  size_t words_false_ = 0;
  AlignedWordVector bits_true_;   // num_sources_ rows of words_true_
  AlignedWordVector bits_false_;  // num_sources_ rows of words_false_
};

/// Extra outputs of the approximate discovery pass, for benches/tests.
struct ApproxDiscoveryReport {
  size_t sampled_true = 0;
  size_t sampled_false = 0;
  size_t total_true = 0;
  size_t total_false = 0;
  /// The effective error bound on estimated joint rates (configured or
  /// derived from sketch_size).
  double error_bound = 0.0;
  /// Pairs re-scored by the exact oracle.
  size_t rescored_pairs = 0;
};

/// Sketch-mode counterpart of ComputePairwiseCorrelations: same contract
/// (one entry per unordered pair, same factor arithmetic, exact
/// marginals), but joint counts come from the sketch — O(S^2 * k/64)
/// instead of O(S^2 * m/64) — and carry `estimated = true`. The
/// `approx.exact_top_k` most significant pairs (deviation of joint count
/// from coverage-adjusted independence, the same signal the clustering
/// pre-screen thresholds) are then re-scored with the exact bitset oracle
/// and carry `estimated = false`. `report` (optional) receives sample
/// sizes and the effective error bound.
StatusOr<std::vector<PairwiseCorrelation>> ComputePairwiseCorrelationsApprox(
    const Dataset& dataset, const DynamicBitset& train_mask,
    const std::vector<SourceId>& sources, const JointStatsOptions& options,
    const ApproxOptions& approx, ApproxDiscoveryReport* report = nullptr);

/// Discovery report: the pairs with the most extreme factors, ranked for
/// human consumption (fuser_cli --discover and the discovery benches).
struct CorrelationRanking {
  /// Highest C / C! factors (strongest positive correlation), descending.
  std::vector<PairwiseCorrelation> strongest_true;
  std::vector<PairwiseCorrelation> strongest_false;
  /// Lowest factors (most anti-correlated), ascending.
  std::vector<PairwiseCorrelation> most_anti_true;
  std::vector<PairwiseCorrelation> most_anti_false;
};

/// Ranks `pairs` by factor on each class and keeps the top `top_n` of
/// each extreme. Pairs with support below `min_support` are skipped
/// (factors from near-empty overlaps are noise). Deterministic: ties
/// break on (a, b).
CorrelationRanking RankCorrelations(
    const std::vector<PairwiseCorrelation>& pairs, size_t top_n,
    size_t min_support = 2);

}  // namespace fuser

#endif  // FUSER_STATS_CORRELATION_SKETCH_H_
