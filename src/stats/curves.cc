#include "stats/curves.h"

#include <algorithm>

#include "common/logging.h"

namespace fuser {

StatusOr<RankedCurves> ComputeRankedCurves(const Dataset& dataset,
                                           const std::vector<double>& scores,
                                           const DynamicBitset& eval_mask) {
  FUSER_CHECK_EQ(scores.size(), dataset.num_triples());
  struct Item {
    double score;
    bool positive;
  };
  std::vector<Item> items;
  eval_mask.ForEach([&](size_t t) {
    Label gold = dataset.label(static_cast<TripleId>(t));
    FUSER_CHECK(gold != Label::kUnknown);
    items.push_back({scores[t], gold == Label::kTrue});
  });
  size_t num_pos = 0;
  for (const Item& item : items) num_pos += item.positive ? 1 : 0;
  size_t num_neg = items.size() - num_pos;
  if (num_pos == 0 || num_neg == 0) {
    return Status::FailedPrecondition(
        "curves need at least one positive and one negative example");
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.score > b.score; });

  RankedCurves curves;
  curves.roc.push_back({0.0, 0.0});
  // PR curves conventionally start at recall 0 with the precision of the
  // first retrieved group; filled in below once known.
  size_t tp = 0;
  size_t fp = 0;
  double prev_recall = 0.0;
  double prev_fpr = 0.0;
  double prev_tpr = 0.0;
  size_t i = 0;
  bool first_group = true;
  while (i < items.size()) {
    size_t j = i;
    // Group of tied scores enters the ranking together.
    while (j < items.size() && items[j].score == items[i].score) {
      tp += items[j].positive ? 1 : 0;
      fp += items[j].positive ? 0 : 1;
      ++j;
    }
    double recall = static_cast<double>(tp) / static_cast<double>(num_pos);
    double precision =
        (tp + fp) == 0
            ? 1.0
            : static_cast<double>(tp) / static_cast<double>(tp + fp);
    double fpr = static_cast<double>(fp) / static_cast<double>(num_neg);
    double tpr = recall;

    if (first_group) {
      curves.pr.push_back({0.0, precision});
      first_group = false;
    }
    curves.pr.push_back({recall, precision});
    curves.roc.push_back({fpr, tpr});

    // Average precision: precision of this group weighted by its recall
    // increment.
    curves.auc_pr += (recall - prev_recall) * precision;
    // Trapezoid for ROC (correct under ties).
    curves.auc_roc += (fpr - prev_fpr) * 0.5 * (tpr + prev_tpr);

    prev_recall = recall;
    prev_fpr = fpr;
    prev_tpr = tpr;
    i = j;
  }
  return curves;
}

}  // namespace fuser
