// Binary-decision metrics: confusion counts, precision/recall/F1.
//
// These are the metrics of Section 5 ("Metrics"): precision over returned
// true triples, recall over provided true triples, and their harmonic mean.
#ifndef FUSER_STATS_METRICS_H_
#define FUSER_STATS_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/bitset.h"
#include "model/dataset.h"

namespace fuser {

/// Confusion counts over the evaluated triples.
struct ConfusionCounts {
  size_t tp = 0;
  size_t fp = 0;
  size_t fn = 0;
  size_t tn = 0;

  size_t total() const { return tp + fp + fn + tn; }

  /// tp / (tp + fp); 1 when nothing was returned (vacuous precision).
  double Precision() const;
  /// tp / (tp + fn); 1 when there are no positives.
  double Recall() const;
  /// False positive rate fp / (fp + tn); 0 when there are no negatives.
  double FalsePositiveRate() const;
  double F1() const;
  double Accuracy() const;

  std::string ToString() const;
};

/// Compares thresholded `scores` against gold labels on the triples in
/// `eval_mask` (must be labeled). Accepts a triple when its score is
/// >= threshold.
ConfusionCounts EvaluateDecisions(const Dataset& dataset,
                                  const std::vector<double>& scores,
                                  const DynamicBitset& eval_mask,
                                  double threshold);

}  // namespace fuser

#endif  // FUSER_STATS_METRICS_H_
