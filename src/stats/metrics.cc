#include "stats/metrics.h"

#include "common/logging.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace fuser {

double ConfusionCounts::Precision() const {
  size_t returned = tp + fp;
  if (returned == 0) return 1.0;
  return static_cast<double>(tp) / static_cast<double>(returned);
}

double ConfusionCounts::Recall() const {
  size_t positives = tp + fn;
  if (positives == 0) return 1.0;
  return static_cast<double>(tp) / static_cast<double>(positives);
}

double ConfusionCounts::FalsePositiveRate() const {
  size_t negatives = fp + tn;
  if (negatives == 0) return 0.0;
  return static_cast<double>(fp) / static_cast<double>(negatives);
}

double ConfusionCounts::F1() const { return F1Score(Precision(), Recall()); }

double ConfusionCounts::Accuracy() const {
  size_t n = total();
  if (n == 0) return 1.0;
  return static_cast<double>(tp + tn) / static_cast<double>(n);
}

std::string ConfusionCounts::ToString() const {
  return StrFormat("tp=%zu fp=%zu fn=%zu tn=%zu P=%.3f R=%.3f F1=%.3f", tp, fp,
                   fn, tn, Precision(), Recall(), F1());
}

ConfusionCounts EvaluateDecisions(const Dataset& dataset,
                                  const std::vector<double>& scores,
                                  const DynamicBitset& eval_mask,
                                  double threshold) {
  FUSER_CHECK_EQ(scores.size(), dataset.num_triples());
  ConfusionCounts counts;
  eval_mask.ForEach([&](size_t t) {
    Label gold = dataset.label(static_cast<TripleId>(t));
    FUSER_CHECK(gold != Label::kUnknown)
        << "eval mask contains unlabeled triple " << t;
    bool accepted = scores[t] >= threshold;
    bool is_true = gold == Label::kTrue;
    if (accepted && is_true) {
      ++counts.tp;
    } else if (accepted && !is_true) {
      ++counts.fp;
    } else if (!accepted && is_true) {
      ++counts.fn;
    } else {
      ++counts.tn;
    }
  });
  return counts;
}

}  // namespace fuser
