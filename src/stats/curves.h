// PR and ROC curves with their areas (AUC-PR, AUC-ROC).
//
// Following Section 5: triples are ranked in decreasing order of the
// computed truthfulness score; adding triples gradually, the PR-curve plots
// precision vs. recall and the ROC-curve plots true-positive rate vs.
// false-positive rate. Tied scores are added as a group (one curve point
// per distinct score).
#ifndef FUSER_STATS_CURVES_H_
#define FUSER_STATS_CURVES_H_

#include <vector>

#include "common/bitset.h"
#include "common/status.h"
#include "model/dataset.h"

namespace fuser {

struct CurvePoint {
  double x = 0.0;
  double y = 0.0;
};

struct RankedCurves {
  std::vector<CurvePoint> pr;   // x=recall, y=precision
  std::vector<CurvePoint> roc;  // x=false positive rate, y=true positive rate
  double auc_pr = 0.0;   // average precision (step interpolation)
  double auc_roc = 0.0;  // trapezoidal area; ties handled by grouping
};

/// Builds both curves from `scores` on the labeled triples of `eval_mask`.
/// Requires at least one positive and one negative example.
StatusOr<RankedCurves> ComputeRankedCurves(const Dataset& dataset,
                                           const std::vector<double>& scores,
                                           const DynamicBitset& eval_mask);

}  // namespace fuser

#endif  // FUSER_STATS_CURVES_H_
