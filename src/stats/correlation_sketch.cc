#include "stats/correlation_sketch.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/bit_util.h"
#include "common/logging.h"
#include "common/simd.h"

namespace fuser {

namespace {

/// Bottom-k coordinated sample of the set bits of `class_mask`: the `k`
/// ids with the smallest hash values (ties broken by id), returned in
/// ascending id order. Every source sees the same sample — that
/// coordination is what makes pair overlap within the sample
/// representative of pair overlap in the class.
std::vector<TripleId> BottomKSample(const DynamicBitset& class_mask, size_t k,
                                    uint64_t seed) {
  std::vector<std::pair<uint64_t, TripleId>> hashed;
  hashed.reserve(class_mask.Count());
  class_mask.ForEach([&](size_t t) {
    hashed.emplace_back(MixMaskPair(static_cast<uint64_t>(t), seed),
                        static_cast<TripleId>(t));
  });
  if (hashed.size() > k) {
    std::nth_element(hashed.begin(), hashed.begin() + static_cast<long>(k),
                     hashed.end());
    hashed.resize(k);
  }
  std::vector<TripleId> sample;
  sample.reserve(hashed.size());
  for (const auto& [h, t] : hashed) sample.push_back(t);
  std::sort(sample.begin(), sample.end());
  return sample;
}

/// Row stride in words for a k-bit row, rounded up to a multiple of 8
/// words (64 bytes) so every row starts cache-line aligned.
size_t AlignedRowWords(size_t k) {
  const size_t words = (k + 63) / 64;
  return (words + 7) & ~size_t{7};
}

}  // namespace

double SketchErrorBound(size_t sketch_size, double delta) {
  if (sketch_size == 0) return 1.0;
  return std::sqrt(std::log(2.0 / delta) /
                   (2.0 * static_cast<double>(sketch_size)));
}

StatusOr<CorrelationSketch> CorrelationSketch::Build(
    const Dataset& dataset, const DynamicBitset& train_mask,
    const std::vector<SourceId>& sources, size_t sketch_size, uint64_t seed) {
  if (!dataset.finalized()) {
    return Status::FailedPrecondition("dataset not finalized");
  }
  if (sketch_size == 0) {
    return Status::InvalidArgument("sketch_size must be > 0");
  }
  DynamicBitset train_true = dataset.true_mask();
  train_true.AndWith(train_mask);
  DynamicBitset train_false = dataset.labeled_mask();
  train_false.AndWith(train_mask);
  train_false.AndNotWith(dataset.true_mask());

  CorrelationSketch sketch;
  sketch.num_sources_ = sources.size();

  // Position of each global source id among the sketch rows; -1 = not
  // tracked (its observations are skipped during the fill).
  std::vector<int32_t> row_of(dataset.num_sources(), -1);
  for (size_t i = 0; i < sources.size(); ++i) {
    row_of[sources[i]] = static_cast<int32_t>(i);
  }

  auto build_class = [&](const DynamicBitset& class_mask, size_t* total,
                         size_t* realized_k, double* scale, size_t* row_words,
                         AlignedWordVector* bits, uint64_t class_seed) {
    std::vector<TripleId> sample =
        BottomKSample(class_mask, sketch_size, class_seed);
    *total = class_mask.Count();
    *realized_k = sample.size();
    *scale = sample.empty() ? 1.0
                            : static_cast<double>(*total) /
                                  static_cast<double>(sample.size());
    *row_words = AlignedRowWords(std::max<size_t>(sample.size(), 1));
    bits->assign(sources.size() * *row_words, 0);
    // One pass over the sampled triples' provider lists fills every
    // source's row: bit j of row i <=> source i provides sample[j].
    for (size_t j = 0; j < sample.size(); ++j) {
      for (SourceId s : dataset.providers(sample[j])) {
        const int32_t row = row_of[s];
        if (row < 0) continue;
        (*bits)[static_cast<size_t>(row) * *row_words + (j >> 6)] |=
            uint64_t{1} << (j & 63);
      }
    }
  };

  build_class(train_true, &sketch.total_true_, &sketch.k_true_,
              &sketch.scale_true_, &sketch.words_true_, &sketch.bits_true_,
              seed);
  build_class(train_false, &sketch.total_false_, &sketch.k_false_,
              &sketch.scale_false_, &sketch.words_false_, &sketch.bits_false_,
              seed ^ 0x9E3779B97F4A7C15ULL);
  return sketch;
}

size_t CorrelationSketch::JointCount(const AlignedWordVector& bits,
                                     size_t words, size_t a, size_t b) const {
  FUSER_CHECK_LT(a, num_sources_);
  FUSER_CHECK_LT(b, num_sources_);
  if (words == 0) return 0;
  return static_cast<size_t>(simd::AndCountWords(
      bits.data() + a * words, bits.data() + b * words, words));
}

StatusOr<std::vector<PairwiseCorrelation>> ComputePairwiseCorrelationsApprox(
    const Dataset& dataset, const DynamicBitset& train_mask,
    const std::vector<SourceId>& sources, const JointStatsOptions& options,
    const ApproxOptions& approx, ApproxDiscoveryReport* report) {
  if (approx.sketch_size == 0) {
    return Status::InvalidArgument("sketch_size must be > 0");
  }
  // Exact linear-cost marginals — without materializing the 2S per-source
  // class bitsets the exact path amortizes over its O(S^2) AndCounts; the
  // few oracle rescores below use the three-way AND+popcount kernel over
  // the raw outputs instead. Then the sketch for the O(S^2) joint counts.
  FUSER_ASSIGN_OR_RETURN(
      PairwiseMarginals marginals,
      ComputePairwiseMarginals(dataset, train_mask, sources, options,
                               /*materialize_outputs=*/false));
  FUSER_ASSIGN_OR_RETURN(
      CorrelationSketch sketch,
      CorrelationSketch::Build(dataset, train_mask, sources,
                               approx.sketch_size, approx.seed));

  const size_t n = sources.size();
  std::vector<PairwiseCorrelation> result;
  std::vector<std::pair<size_t, size_t>> positions;  // source positions
  std::vector<std::pair<uint64_t, uint64_t>> sampled;  // raw joint overlaps
  result.reserve(n * (n - 1) / 2);
  positions.reserve(n * (n - 1) / 2);
  sampled.reserve(n * (n - 1) / 2);
  // Dispatch resolved once; the estimate loop is the hot O(S^2) part.
  const simd::Kernels& kernels = simd::ActiveKernels();
  const uint64_t* true_rows = sketch.true_rows();
  const uint64_t* false_rows = sketch.false_rows();
  const size_t wt = sketch.true_row_words();
  const size_t wf = sketch.false_row_words();
  for (size_t a = 0; a < n; ++a) {
    const uint64_t* ta = true_rows + a * wt;
    const uint64_t* fa = false_rows + a * wf;
    for (size_t b = a + 1; b < n; ++b) {
      const uint64_t st = kernels.and_count(ta, true_rows + b * wt, wt);
      const uint64_t sf = kernels.and_count(fa, false_rows + b * wf, wf);
      PairwiseCorrelation pc = MakePairwiseCorrelation(
          marginals, a, b, static_cast<double>(st) * sketch.scale_true(),
          static_cast<double>(sf) * sketch.scale_false());
      pc.estimated = true;
      result.push_back(pc);
      positions.emplace_back(a, b);
      sampled.emplace_back(st, sf);
    }
  }

  // Rank pairs by the clustering pre-screen's significance signal —
  // deviation of the joint count from coverage-adjusted independence,
  // minus a Poisson noise allowance — and re-score the top
  // `exact_top_k` with the exact bitset oracle. The signal is evaluated
  // in *sample space* (integer sampled overlaps against the down-scaled
  // baseline): scaled estimates move in jumps of `scale`, which would
  // turn one sampled co-occurrence against a sub-1 baseline into a huge
  // fake deviation; in sample space the noise allowance prices that
  // single observation correctly.
  size_t rescored = 0;
  if (approx.exact_top_k > 0 && !result.empty()) {
    auto coverage_ratio = [&](bool on_true) {
      double obs = 0.0;
      double expected = 0.0;
      for (const PairwiseCorrelation& pc : result) {
        obs += static_cast<double>(on_true ? pc.joint_true_count
                                           : pc.joint_false_count);
        expected += on_true ? pc.indep_true_count : pc.indep_false_count;
      }
      return expected > 0.0 ? std::max(obs / expected, 1e-3) : 1.0;
    };
    const double kappa_true = coverage_ratio(true);
    const double kappa_false = coverage_ratio(false);
    auto deviation = [](double sampled_obs, double sampled_baseline) {
      const double dev = std::fabs(
          std::log((sampled_obs + 0.5) / (sampled_baseline + 0.5)));
      return dev - 2.0 / std::sqrt(std::max(1.0, sampled_baseline));
    };
    std::vector<size_t> order;
    order.reserve(result.size());
    std::vector<double> strength(result.size());
    for (size_t i = 0; i < result.size(); ++i) {
      const PairwiseCorrelation& pc = result[i];
      strength[i] = std::max(
          deviation(static_cast<double>(sampled[i].first),
                    kappa_true * pc.indep_true_count / sketch.scale_true()),
          deviation(static_cast<double>(sampled[i].second),
                    kappa_false * pc.indep_false_count /
                        sketch.scale_false()));
      // Pairs whose deviation is inside the noise allowance are not
      // worth an oracle call.
      if (strength[i] > 0.0) order.push_back(i);
    }
    const size_t top_k = std::min(approx.exact_top_k, order.size());
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(top_k),
                      order.end(), [&](size_t x, size_t y) {
                        if (strength[x] != strength[y]) {
                          return strength[x] > strength[y];
                        }
                        return positions[x] < positions[y];
                      });
    const WordSpan tt = marginals.train_true.word_span();
    const WordSpan tf = marginals.train_false.word_span();
    for (size_t i = 0; i < top_k; ++i) {
      const size_t pair = order[i];
      const auto [a, b] = positions[pair];
      const WordSpan oa = dataset.output(sources[a]).word_span();
      const WordSpan ob = dataset.output(sources[b]).word_span();
      const double joint_true = static_cast<double>(
          kernels.and_count3(oa.data, ob.data, tt.data, tt.size));
      const double joint_false = static_cast<double>(
          kernels.and_count3(oa.data, ob.data, tf.data, tf.size));
      result[pair] =
          MakePairwiseCorrelation(marginals, a, b, joint_true, joint_false);
      ++rescored;
    }
  }

  if (report != nullptr) {
    report->sampled_true = sketch.sampled_true();
    report->sampled_false = sketch.sampled_false();
    report->total_true = sketch.total_true();
    report->total_false = sketch.total_false();
    report->error_bound = approx.error_bound > 0.0
                              ? approx.error_bound
                              : SketchErrorBound(approx.sketch_size,
                                                 approx.delta);
    report->rescored_pairs = rescored;
  }
  return result;
}

CorrelationRanking RankCorrelations(
    const std::vector<PairwiseCorrelation>& pairs, size_t top_n,
    size_t min_support) {
  std::vector<PairwiseCorrelation> supported;
  supported.reserve(pairs.size());
  for (const PairwiseCorrelation& pc : pairs) {
    if (pc.support >= min_support) supported.push_back(pc);
  }
  CorrelationRanking ranking;
  auto fill = [&](bool on_true, bool strongest,
                  std::vector<PairwiseCorrelation>* out) {
    std::vector<PairwiseCorrelation> sorted = supported;
    std::sort(sorted.begin(), sorted.end(),
              [&](const PairwiseCorrelation& x, const PairwiseCorrelation& y) {
                const double fx = on_true ? x.factors.on_true
                                          : x.factors.on_false;
                const double fy = on_true ? y.factors.on_true
                                          : y.factors.on_false;
                if (fx != fy) return strongest ? fx > fy : fx < fy;
                if (x.a != y.a) return x.a < y.a;  // deterministic ties
                return x.b < y.b;
              });
    const size_t count = std::min(top_n, sorted.size());
    out->assign(sorted.begin(), sorted.begin() + static_cast<long>(count));
  };
  fill(true, true, &ranking.strongest_true);
  fill(false, true, &ranking.strongest_false);
  fill(true, false, &ranking.most_anti_true);
  fill(false, false, &ranking.most_anti_false);
  return ranking;
}

}  // namespace fuser
