// Train/test splitting over labeled triples.
//
// Quality parameters are estimated from a training subset of the gold
// standard (Section 3.2 "we compute them from a set of training data");
// the split here is stratified so both classes appear in both halves.
#ifndef FUSER_MODEL_SPLIT_H_
#define FUSER_MODEL_SPLIT_H_

#include "common/bitset.h"
#include "common/random.h"
#include "common/status.h"
#include "model/dataset.h"

namespace fuser {

struct TrainTestSplit {
  DynamicBitset train;  // over triple ids; subset of labeled triples
  DynamicBitset test;   // labeled \ train
};

/// Splits the labeled triples of `dataset` into train/test with
/// `train_fraction` of each label class (rounded) in train.
StatusOr<TrainTestSplit> StratifiedSplit(const Dataset& dataset,
                                         double train_fraction, Rng* rng);

/// A "split" whose train and test masks are both the full labeled set.
/// This mirrors the paper's evaluation setup, where source quality is
/// computed "according to the gold standard" itself.
TrainTestSplit FullGoldSplit(const Dataset& dataset);

}  // namespace fuser

#endif  // FUSER_MODEL_SPLIT_H_
