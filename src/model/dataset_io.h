// TSV import/export for datasets.
//
// Observations file (one row per source-triple observation):
//   source <TAB> subject <TAB> predicate <TAB> object [<TAB> domain]
// Gold file (one row per labeled triple):
//   subject <TAB> predicate <TAB> object <TAB> true|false
// Lines starting with '#' and blank lines are skipped.
#ifndef FUSER_MODEL_DATASET_IO_H_
#define FUSER_MODEL_DATASET_IO_H_

#include <string>

#include "common/status.h"
#include "model/dataset.h"

namespace fuser {

/// Loads a finalized dataset from an observations file and an optional gold
/// file (pass "" to skip labels).
StatusOr<Dataset> LoadDataset(const std::string& observations_path,
                              const std::string& gold_path);

/// Loads the same TSV formats into an ObservationBatch for streaming
/// ingestion (Dataset::ApplyBatch / FusionEngine::Update). Either path may
/// be "" to skip that side.
StatusOr<ObservationBatch> LoadObservationBatch(
    const std::string& observations_path, const std::string& gold_path);

/// Writes the observations of `dataset` in the TSV format above.
Status SaveObservations(const Dataset& dataset, const std::string& path);

/// Writes the gold labels of `dataset` (labeled triples only).
Status SaveGold(const Dataset& dataset, const std::string& path);

}  // namespace fuser

#endif  // FUSER_MODEL_DATASET_IO_H_
