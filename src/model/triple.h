// Knowledge triples and interning.
//
// A triple is {subject, predicate, object} (equivalently a {row, column,
// value} cell, per Section 2.1 of the paper). The dictionary interns triples
// so that the rest of the system works with dense 32-bit TripleIds.
#ifndef FUSER_MODEL_TRIPLE_H_
#define FUSER_MODEL_TRIPLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace fuser {

using TripleId = uint32_t;
using SourceId = uint32_t;
using DomainId = uint32_t;

inline constexpr TripleId kInvalidTriple = static_cast<TripleId>(-1);

/// A knowledge triple. Equality is field-wise.
struct Triple {
  std::string subject;
  std::string predicate;
  std::string object;

  bool operator==(const Triple& other) const {
    return subject == other.subject && predicate == other.predicate &&
           object == other.object;
  }

  /// "{subject, predicate, object}" for messages and debugging.
  std::string ToString() const;
};

struct TripleHash {
  size_t operator()(const Triple& t) const;
};

/// Interns triples; ids are dense and assigned in insertion order.
class TripleDictionary {
 public:
  /// Returns the id for `t`, adding it if new.
  TripleId Intern(const Triple& t);

  /// Returns the id for `t` or kInvalidTriple if absent.
  TripleId Lookup(const Triple& t) const;

  const Triple& Get(TripleId id) const;

  size_t size() const { return triples_.size(); }

 private:
  std::vector<Triple> triples_;
  std::unordered_map<Triple, TripleId, TripleHash> index_;
};

}  // namespace fuser

#endif  // FUSER_MODEL_TRIPLE_H_
