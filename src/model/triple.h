// Knowledge triples and interning.
//
// A triple is {subject, predicate, object} (equivalently a {row, column,
// value} cell, per Section 2.1 of the paper). The dictionary interns
// triples so that the rest of the system works with dense 32-bit
// TripleIds.
//
// Storage is columnar: three StringRef columns (subject/predicate/object)
// into a shared StringInterner, plus an open-addressing index of
// TripleIds that hashes and compares through the ref columns. Because the
// interner dedups strings, triple equality is ref equality — no byte
// comparison on the lookup hot path, no second copy of the strings as map
// keys, and the columns mmap-attach directly from a snapshot.
#ifndef FUSER_MODEL_TRIPLE_H_
#define FUSER_MODEL_TRIPLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/column.h"

namespace fuser {

using TripleId = uint32_t;
using SourceId = uint32_t;
using DomainId = uint32_t;

inline constexpr TripleId kInvalidTriple = static_cast<TripleId>(-1);

/// An owning knowledge triple (construction-time / streaming value type).
/// Equality is field-wise.
struct Triple {
  std::string subject;
  std::string predicate;
  std::string object;

  bool operator==(const Triple& other) const {
    return subject == other.subject && predicate == other.predicate &&
           object == other.object;
  }

  /// "{subject, predicate, object}" for messages and debugging.
  std::string ToString() const;
};

/// A non-owning triple: three views into interned (or caller-owned)
/// strings. This is what Dataset::triple(id) returns — the fields alias
/// the dataset's string arena, so copy the view into a Triple if it must
/// outlive the dataset. Implicitly converts from and to Triple so call
/// sites written against the owning type keep working.
struct TripleView {
  std::string_view subject;
  std::string_view predicate;
  std::string_view object;

  TripleView() = default;
  TripleView(std::string_view s, std::string_view p, std::string_view o)
      : subject(s), predicate(p), object(o) {}
  TripleView(const Triple& t)
      : subject(t.subject), predicate(t.predicate), object(t.object) {}

  operator Triple() const {
    return Triple{std::string(subject), std::string(predicate),
                  std::string(object)};
  }

  bool operator==(const TripleView& o) const {
    return subject == o.subject && predicate == o.predicate &&
           object == o.object;
  }
  bool operator!=(const TripleView& o) const { return !(*this == o); }

  std::string ToString() const;
};

inline bool operator==(const TripleView& a, const Triple& b) {
  return a == TripleView(b);
}
inline bool operator==(const Triple& a, const TripleView& b) {
  return TripleView(a) == b;
}
inline bool operator!=(const TripleView& a, const Triple& b) {
  return !(a == b);
}
inline bool operator!=(const Triple& a, const TripleView& b) {
  return !(a == b);
}

struct TripleHash {
  size_t operator()(const Triple& t) const;
};

/// Interns triples; ids are dense and assigned in insertion order.
///
/// The dictionary does not own its strings: it is bound to a
/// StringInterner (the Dataset's) and stores one StringRef per field. The
/// id index is an open-addressing table over TripleIds, hashed on the
/// three packed refs; after a snapshot attach the columns arrive without
/// an index and BuildIndex() reconstructs it (and re-registers every
/// field string with the interner) on first lookup.
class TripleDictionary {
 public:
  TripleDictionary() = default;
  TripleDictionary(const TripleDictionary&) = delete;
  TripleDictionary& operator=(const TripleDictionary&) = delete;
  TripleDictionary(TripleDictionary&&) = default;
  TripleDictionary& operator=(TripleDictionary&&) = default;

  /// Must be called before any other method; the interner must outlive
  /// the dictionary (Dataset owns both).
  void BindInterner(StringInterner* interner) { interner_ = interner; }

  /// Returns the id for `t`, adding it if new. Requires a built index.
  TripleId Intern(const TripleView& t);

  /// Returns the id for `t` or kInvalidTriple. Requires a built index.
  TripleId Lookup(const TripleView& t) const;

  TripleView Get(TripleId id) const;

  size_t size() const { return subjects_.size(); }

  // ---- Columnar access (persistence + attach) ----

  Span<StringRef> subjects() const { return subjects_.span(); }
  Span<StringRef> predicates() const { return predicates_.span(); }
  Span<StringRef> objects() const { return objects_.span(); }

  /// Binds the columns to externally owned ref arrays (snapshot attach).
  /// Leaves the index unbuilt; call BuildIndex before the first lookup.
  void AttachColumns(const StringRef* subjects, const StringRef* predicates,
                     const StringRef* objects, size_t n);

  /// Promotes borrowed columns to owned storage (copy-on-write).
  void EnsureOwned();

  bool index_built() const { return index_built_; }

  /// Rebuilds the id index from the columns and re-registers every field
  /// string with the interner. O(size).
  void BuildIndex();

  size_t column_owned_bytes() const {
    return subjects_.owned_bytes() + predicates_.owned_bytes() +
           objects_.owned_bytes();
  }
  size_t index_bytes() const { return slots_.size() * sizeof(uint32_t); }
  bool columns_borrowed() const { return subjects_.borrowed(); }

 private:
  static constexpr uint32_t kEmptySlot = ~uint32_t{0};

  uint64_t HashRefs(StringRef s, StringRef p, StringRef o) const;
  void MaybeGrow();
  void InsertSlot(TripleId id);

  StringInterner* interner_ = nullptr;
  Column<StringRef> subjects_;
  Column<StringRef> predicates_;
  Column<StringRef> objects_;
  std::vector<uint32_t> slots_;
  bool index_built_ = true;  // empty dictionaries are trivially indexed
};

}  // namespace fuser

#endif  // FUSER_MODEL_TRIPLE_H_
