// Dataset: sources, their output triples, domains/scopes, and gold labels.
//
// Implements the paper's data model (Section 2.1): a set of sources
// S = {S1..Sn}, outputs O = {O1..On}, and for each triple t the observation
// set Ot. Open-world semantics: a source's *non*-provision of t is an
// observation only if the source is "in scope" for t, i.e., provides some
// other triple in t's domain; otherwise the source is silent about t.
//
// Storage is columnar and arena-backed (see README "Memory architecture"):
//   * every string (triple fields, source/domain names) lives once in a
//     StringArena, referenced by packed StringRefs;
//   * per-triple data (refs, domain, label) are flat columns;
//   * providers / scope rows are CSR tables (offset+count into one pool)
//     instead of vector<vector<Id>>;
//   * all of it either owns its memory or borrows it from an attached
//     snapshot image (mmap). Mutators promote borrowed storage to owned
//     copies on first write (copy-on-write), so ApplyBatch works
//     identically on attached datasets.
//
// Usage:
//   Dataset d;
//   SourceId s = d.AddSource("extractor-1");
//   TripleId t = d.AddTriple({"Obama", "profession", "president"}, "obama");
//   d.Provide(s, t);
//   d.SetLabel(t, /*is_true=*/true);
//   d.Finalize();
#ifndef FUSER_MODEL_DATASET_H_
#define FUSER_MODEL_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/bitset.h"
#include "common/column.h"
#include "common/span.h"
#include "common/status.h"
#include "model/triple.h"

namespace fuser {

/// Gold-standard label of a triple.
enum class Label : uint8_t { kUnknown = 0, kFalse = 1, kTrue = 2 };

/// One streamed source-triple observation (Si |= t). Sources, triples, and
/// domains are identified by name so a batch can introduce new ones.
struct Observation {
  std::string source;
  Triple triple;
  std::string domain;  // "" = the default global domain
};

/// One streamed gold label.
struct LabelUpdate {
  Triple triple;
  bool is_true = false;
};

/// A micro-batch of streamed observations and labels, applied atomically by
/// Dataset::ApplyBatch after Finalize.
struct ObservationBatch {
  /// Sources to intern (in order) before any observation is processed.
  /// ApplyBatch normally creates sources lazily at their first observation;
  /// a sharded router instead pre-registers every new source of the batch
  /// in every shard so shard-local SourceIds stay equal to global ones.
  /// Names already present are skipped.
  std::vector<std::string> register_sources;
  std::vector<Observation> observations;
  std::vector<LabelUpdate> labels;

  bool empty() const {
    return register_sources.empty() && observations.empty() && labels.empty();
  }
};

/// Structural delta produced by ApplyBatch: exactly what changed, in terms
/// the incremental engine paths can consume. Old masks are reconstructable
/// from the current dataset minus the recorded additions (observations only
/// ever add provider/scope bits).
struct DatasetDelta {
  size_t old_num_triples = 0;
  size_t old_num_sources = 0;
  size_t old_num_domains = 0;
  std::vector<SourceId> new_sources;
  std::vector<TripleId> new_triples;  // ids are >= old_num_triples
  /// (source, triple) pairs newly provided by this batch (duplicates of
  /// existing observations are dropped). Includes provides of new triples.
  std::vector<std::pair<SourceId, TripleId>> new_provides;
  /// (source, domain) pairs where the source newly covers the domain, i.e.
  /// every triple of the domain gained an in-scope source.
  std::vector<std::pair<SourceId, DomainId>> scope_gains;
  /// (triple, previous label) for every label that actually changed.
  std::vector<std::pair<TripleId, Label>> label_changes;

  bool empty() const {
    return new_sources.empty() && new_triples.empty() &&
           new_provides.empty() && scope_gains.empty() &&
           label_changes.empty();
  }
};

/// Raw pointers into one validated, contiguous snapshot image — the
/// wire-format view of a finalized dataset's columns. Built by the persist
/// layer and handed to Dataset::FromColumns, which either copies the
/// arrays (bulk load) or binds its storage to them (mmap attach). All CSR
/// arrays are compact (pool in row order, no garbage).
struct DatasetColumns {
  uint64_t version = 0;
  size_t num_sources = 0;
  size_t num_domains = 0;
  size_t num_triples = 0;

  const char* arena_image = nullptr;
  size_t arena_image_bytes = 0;
  size_t arena_chunk_bytes = 0;

  const StringRef* source_names = nullptr;  // [num_sources]
  const StringRef* domain_names = nullptr;  // [num_domains]
  const StringRef* subjects = nullptr;      // [num_triples]
  const StringRef* predicates = nullptr;    // [num_triples]
  const StringRef* objects = nullptr;       // [num_triples]
  const DomainId* domains = nullptr;        // [num_triples]
  const uint8_t* labels = nullptr;          // [num_triples]

  const uint64_t* output_words = nullptr;  // [num_sources * W], W=ceil(m/64)

  const uint64_t* provider_offsets = nullptr;  // [num_triples]
  const uint32_t* provider_counts = nullptr;   // [num_triples]
  const SourceId* provider_pool = nullptr;     // [provider_pool_len]
  size_t provider_pool_len = 0;

  const uint64_t* domain_source_offsets = nullptr;  // [num_domains]
  const uint32_t* domain_source_counts = nullptr;   // [num_domains]
  const SourceId* domain_source_pool = nullptr;
  size_t domain_source_pool_len = 0;

  const uint64_t* domain_triple_offsets = nullptr;  // [num_domains]
  const uint32_t* domain_triple_counts = nullptr;   // [num_domains]
  const TripleId* domain_triple_pool = nullptr;
  size_t domain_triple_pool_len = 0;

  const uint64_t* covers_words = nullptr;  // [num_sources * Wd], Wd=ceil(D/64)
  const uint64_t* true_words = nullptr;    // [W]
  const uint64_t* labeled_words = nullptr; // [W]
};

/// Memory/layout report (fuser_cli --stats, bench_memory). Owned bytes are
/// heap the dataset allocated; mapped bytes are served from an attached
/// snapshot image. Index bytes are the lazily built lookup structures
/// (string interner table, triple id index, name maps) — zero until the
/// first name/triple lookup after an attach.
struct DatasetMemoryStats {
  size_t num_triples = 0;
  size_t num_sources = 0;
  size_t num_domains = 0;
  size_t arena_bytes = 0;    // string payload (owned or mapped)
  size_t column_bytes = 0;   // ref/domain/label columns
  size_t csr_bytes = 0;      // providers + scope tables
  size_t bitset_bytes = 0;   // outputs, covers, masks
  size_t index_bytes = 0;    // lookup structures (approximate)
  size_t owned_bytes = 0;    // heap total
  size_t mapped_bytes = 0;   // attached-image total
  size_t total_bytes = 0;    // owned + mapped
  /// "owned", "mmap", or "mmap+promoted".
  const char* storage_mode = "owned";
};

class Dataset {
 public:
  Dataset();

  // Dataset owns large columns and bitsets; keep it move-only to avoid
  // accidental deep copies.
  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  // ---- Construction (before Finalize) ----

  /// Registers a source; names must be unique.
  SourceId AddSource(std::string_view name);

  /// Interns a triple, assigning it to the domain named `domain` ("" means
  /// the default global domain). Re-adding an existing triple returns its
  /// id (and ignores a conflicting domain).
  TripleId AddTriple(const TripleView& triple, std::string_view domain = {});

  /// Records that `source` outputs `triple` (Si |= t). Idempotent.
  void Provide(SourceId source, TripleId triple);

  /// Sets the gold label of a triple.
  void SetLabel(TripleId triple, bool is_true);

  /// Builds the derived indexes (provider lists, scope tables, gold
  /// bitsets). Must be called once; afterwards the dataset only changes
  /// through ApplyBatch. `allow_empty` relaxes the no-sources/no-triples
  /// errors for shard datasets whose partition happens to be empty (all
  /// derived structures finalize to zero width and ApplyBatch may fill
  /// them later).
  Status Finalize() { return Finalize(/*allow_empty=*/false); }
  Status Finalize(bool allow_empty);

  bool finalized() const { return finalized_; }

  // ---- Streaming ingestion (after Finalize) ----

  /// Applies a micro-batch of streamed observations and labels, maintaining
  /// every derived index incrementally (providers, scope tables, gold
  /// bitsets). Unknown sources/triples/domains are created; duplicate
  /// observations and no-op labels are dropped. Labels for triples no
  /// source provides are skipped, mirroring LoadDataset. On success the
  /// structural delta is written to `*delta` (never null) and version() is
  /// bumped. On an attached (mmap) dataset this is the moment borrowed
  /// storage gets promoted to owned memory (copy-on-write, per structure).
  Status ApplyBatch(const ObservationBatch& batch, DatasetDelta* delta);

  /// Monotonic change counter: bumped by Finalize and every ApplyBatch.
  /// Consumers caching derived state (e.g. FusionEngine) compare versions
  /// to detect out-of-band mutation.
  uint64_t version() const { return version_; }

  /// Order-sensitive structural fingerprint of everything scoring depends
  /// on: the sizes, every triple's domain and label, and every source's
  /// output bitset. String contents are deliberately excluded — scores
  /// are a function of structure and labels alone — which keeps the hash
  /// cheap enough for the warm-start hot path. Snapshot files record it
  /// so WarmStart can refuse a dataset whose *contents* changed even when
  /// the sizes and the version counter happen to line up (e.g. TSVs
  /// edited in place and reloaded). Valid after Finalize().
  uint64_t ContentFingerprint() const;

  /// Persistence hook (src/persist/): fast-forwards the change counter of
  /// a dataset just re-materialized from a snapshot to the value the
  /// original dataset had at save time, so engine state stamped with that
  /// version warm-starts against the copy. Only forward jumps on a
  /// finalized dataset are allowed — this is not a general setter.
  Status RestoreVersion(uint64_t version);

  // ---- Sizes ----

  size_t num_sources() const { return source_names_.size(); }
  size_t num_triples() const { return dict_.size(); }
  size_t num_domains() const { return domain_names_.size(); }

  // ---- Triples & labels ----

  /// A view into the string arena; copy into a Triple to outlive the
  /// dataset.
  TripleView triple(TripleId t) const { return dict_.Get(t); }
  TripleId FindTriple(const TripleView& t) const;
  Label label(TripleId t) const { return labels_[t]; }
  DomainId domain(TripleId t) const { return domains_[t]; }
  std::string_view domain_name(DomainId d) const {
    return strings_->arena().View(domain_names_[d]);
  }

  /// Triples labeled true / triples with any label (as bitsets over ids).
  /// Valid after Finalize().
  const DynamicBitset& true_mask() const { return true_mask_; }
  const DynamicBitset& labeled_mask() const { return labeled_mask_; }

  size_t num_labeled() const { return labeled_mask_.Count(); }
  size_t num_true() const { return true_mask_.Count(); }

  // ---- Sources & observations ----

  std::string_view source_name(SourceId s) const {
    return strings_->arena().View(source_names_[s]);
  }

  /// Id of the source named `name`, or an error if unknown.
  StatusOr<SourceId> FindSource(std::string_view name) const;

  /// The output set Oi of a source, as a bitset over triple ids.
  const DynamicBitset& output(SourceId s) const { return outputs_[s]; }

  bool provides(SourceId s, TripleId t) const { return outputs_[s].Test(t); }

  /// Sources providing t (St), ascending. Valid after Finalize().
  Span<SourceId> providers(TripleId t) const { return providers_.row(t); }

  /// Sources in scope for t: those that provide at least one triple in t's
  /// domain. Every provider of t is in scope. Valid after Finalize().
  Span<SourceId> in_scope_sources(TripleId t) const {
    return domain_sources_.row(domains_[t]);
  }

  bool in_scope(SourceId s, TripleId t) const {
    return source_covers_domain_[s].Test(domains_[t]);
  }

  /// Whether `s` provides any triple of domain `d` (the scope relation,
  /// keyed by domain instead of by triple). Valid after Finalize().
  bool covers_domain(SourceId s, DomainId d) const {
    return source_covers_domain_[s].Test(d);
  }

  /// Number of triples a source provides.
  size_t output_size(SourceId s) const { return outputs_[s].Count(); }

  /// Triples of domain d, ascending. Valid after Finalize().
  Span<TripleId> triples_in_domain(DomainId d) const {
    return domain_triples_.row(d);
  }

  // ---- Columnar access (persistence, src/persist/) ----

  const StringArena& string_arena() const { return strings_->arena(); }
  Span<StringRef> source_name_refs() const { return source_names_.span(); }
  Span<StringRef> domain_name_refs() const { return domain_names_.span(); }
  const TripleDictionary& triple_dict() const { return dict_; }
  Span<DomainId> domains_span() const { return domains_.span(); }
  Span<Label> labels_span() const { return labels_.span(); }
  const CsrTable<SourceId>& providers_table() const { return providers_; }
  const CsrTable<SourceId>& domain_sources_table() const {
    return domain_sources_;
  }
  const CsrTable<TripleId>& domain_triples_table() const {
    return domain_triples_;
  }
  const DynamicBitset& covers_bitset(SourceId s) const {
    return source_covers_domain_[s];
  }

  /// Builds a finalized dataset over a validated snapshot image. With
  /// `borrow` the columns alias the image (zero-copy attach; `keepalive`
  /// pins the mapping for the dataset's lifetime); without it every array
  /// is bulk-copied into owned storage and `keepalive` may be null.
  /// Lookup structures (name maps, triple index, interner table) are NOT
  /// built here — they materialize lazily on the first lookup — so attach
  /// cost is O(num_sources + num_domains), independent of triple count.
  static std::unique_ptr<Dataset> FromColumns(
      const DatasetColumns& columns, bool borrow,
      std::shared_ptr<const void> keepalive);

  /// Whether any storage is still borrowed from an attached image.
  bool attached() const { return attached_; }

  DatasetMemoryStats MemoryStats() const;

 private:
  DomainId InternDomain(std::string_view name);
  /// Rebuilds the lazy lookup structures (name maps, interner table,
  /// triple id index) after a snapshot attach. No-op when current.
  void EnsureLookups() const;

  bool finalized_ = false;
  uint64_t version_ = 0;
  bool attached_ = false;

  /// Owns the arena; heap-allocated so interior pointers (views keyed in
  /// the lazy name maps, the dictionary's interner binding) survive
  /// Dataset moves.
  std::unique_ptr<StringInterner> strings_;
  mutable TripleDictionary dict_;
  Column<StringRef> source_names_;
  Column<StringRef> domain_names_;
  Column<Label> labels_;
  Column<DomainId> domains_;

  // Lazy lookup structures, keyed by arena views (rebuilt after attach).
  mutable std::unordered_map<std::string_view, SourceId> source_index_;
  mutable std::unordered_map<std::string_view, DomainId> domain_index_;
  mutable bool lookups_ready_ = true;

  // outputs_[s] is a bitset over triples; rebuilt to full width in
  // Finalize().
  std::vector<DynamicBitset> outputs_;
  // Sparse (source, triple) observations collected before Finalize().
  std::vector<std::pair<SourceId, TripleId>> pending_observations_;

  // Derived (Finalize; maintained incrementally by ApplyBatch).
  CsrTable<SourceId> providers_;
  CsrTable<SourceId> domain_sources_;
  CsrTable<TripleId> domain_triples_;
  std::vector<DynamicBitset> source_covers_domain_;
  DynamicBitset true_mask_;
  DynamicBitset labeled_mask_;

  /// Pins the mmap'd snapshot image borrowed storage points into.
  std::shared_ptr<const void> keepalive_;
};

}  // namespace fuser

#endif  // FUSER_MODEL_DATASET_H_
