// Dataset: sources, their output triples, domains/scopes, and gold labels.
//
// Implements the paper's data model (Section 2.1): a set of sources
// S = {S1..Sn}, outputs O = {O1..On}, and for each triple t the observation
// set Ot. Open-world semantics: a source's *non*-provision of t is an
// observation only if the source is "in scope" for t, i.e., provides some
// other triple in t's domain; otherwise the source is silent about t.
//
// Usage:
//   Dataset d;
//   SourceId s = d.AddSource("extractor-1");
//   TripleId t = d.AddTriple({"Obama", "profession", "president"}, "obama");
//   d.Provide(s, t);
//   d.SetLabel(t, /*is_true=*/true);
//   d.Finalize();
#ifndef FUSER_MODEL_DATASET_H_
#define FUSER_MODEL_DATASET_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bitset.h"
#include "common/status.h"
#include "model/triple.h"

namespace fuser {

/// Gold-standard label of a triple.
enum class Label : uint8_t { kUnknown = 0, kFalse = 1, kTrue = 2 };

/// One streamed source-triple observation (Si |= t). Sources, triples, and
/// domains are identified by name so a batch can introduce new ones.
struct Observation {
  std::string source;
  Triple triple;
  std::string domain;  // "" = the default global domain
};

/// One streamed gold label.
struct LabelUpdate {
  Triple triple;
  bool is_true = false;
};

/// A micro-batch of streamed observations and labels, applied atomically by
/// Dataset::ApplyBatch after Finalize.
struct ObservationBatch {
  /// Sources to intern (in order) before any observation is processed.
  /// ApplyBatch normally creates sources lazily at their first observation;
  /// a sharded router instead pre-registers every new source of the batch
  /// in every shard so shard-local SourceIds stay equal to global ones.
  /// Names already present are skipped.
  std::vector<std::string> register_sources;
  std::vector<Observation> observations;
  std::vector<LabelUpdate> labels;

  bool empty() const {
    return register_sources.empty() && observations.empty() && labels.empty();
  }
};

/// Structural delta produced by ApplyBatch: exactly what changed, in terms
/// the incremental engine paths can consume. Old masks are reconstructable
/// from the current dataset minus the recorded additions (observations only
/// ever add provider/scope bits).
struct DatasetDelta {
  size_t old_num_triples = 0;
  size_t old_num_sources = 0;
  size_t old_num_domains = 0;
  std::vector<SourceId> new_sources;
  std::vector<TripleId> new_triples;  // ids are >= old_num_triples
  /// (source, triple) pairs newly provided by this batch (duplicates of
  /// existing observations are dropped). Includes provides of new triples.
  std::vector<std::pair<SourceId, TripleId>> new_provides;
  /// (source, domain) pairs where the source newly covers the domain, i.e.
  /// every triple of the domain gained an in-scope source.
  std::vector<std::pair<SourceId, DomainId>> scope_gains;
  /// (triple, previous label) for every label that actually changed.
  std::vector<std::pair<TripleId, Label>> label_changes;

  bool empty() const {
    return new_sources.empty() && new_triples.empty() &&
           new_provides.empty() && scope_gains.empty() &&
           label_changes.empty();
  }
};

class Dataset {
 public:
  Dataset() = default;

  // Dataset owns large bitsets; keep it move-only to avoid accidental
  // deep copies.
  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  // ---- Construction (before Finalize) ----

  /// Registers a source; names must be unique.
  SourceId AddSource(const std::string& name);

  /// Interns a triple, assigning it to the domain named `domain` ("" means
  /// the default global domain). Re-adding an existing triple returns its
  /// id (and ignores a conflicting domain).
  TripleId AddTriple(const Triple& triple, const std::string& domain = "");

  /// Records that `source` outputs `triple` (Si |= t). Idempotent.
  void Provide(SourceId source, TripleId triple);

  /// Sets the gold label of a triple.
  void SetLabel(TripleId triple, bool is_true);

  /// Builds the derived indexes (provider lists, scope tables, gold
  /// bitsets). Must be called once; afterwards the dataset only changes
  /// through ApplyBatch. `allow_empty` relaxes the no-sources/no-triples
  /// errors for shard datasets whose partition happens to be empty (all
  /// derived structures finalize to zero width and ApplyBatch may fill
  /// them later).
  Status Finalize() { return Finalize(/*allow_empty=*/false); }
  Status Finalize(bool allow_empty);

  bool finalized() const { return finalized_; }

  // ---- Streaming ingestion (after Finalize) ----

  /// Applies a micro-batch of streamed observations and labels, maintaining
  /// every derived index incrementally (providers, scope tables, gold
  /// bitsets). Unknown sources/triples/domains are created; duplicate
  /// observations and no-op labels are dropped. Labels for triples no
  /// source provides are skipped, mirroring LoadDataset. On success the
  /// structural delta is written to `*delta` (never null) and version() is
  /// bumped.
  Status ApplyBatch(const ObservationBatch& batch, DatasetDelta* delta);

  /// Monotonic change counter: bumped by Finalize and every ApplyBatch.
  /// Consumers caching derived state (e.g. FusionEngine) compare versions
  /// to detect out-of-band mutation.
  uint64_t version() const { return version_; }

  /// Order-sensitive structural fingerprint of everything scoring depends
  /// on: the sizes, every triple's domain and label, and every source's
  /// output bitset. String contents are deliberately excluded — scores
  /// are a function of structure and labels alone — which keeps the hash
  /// cheap enough for the warm-start hot path. Snapshot files record it
  /// so WarmStart can refuse a dataset whose *contents* changed even when
  /// the sizes and the version counter happen to line up (e.g. TSVs
  /// edited in place and reloaded). Valid after Finalize().
  uint64_t ContentFingerprint() const;

  /// Persistence hook (src/persist/): fast-forwards the change counter of
  /// a dataset just re-materialized from a snapshot to the value the
  /// original dataset had at save time, so engine state stamped with that
  /// version warm-starts against the copy. Only forward jumps on a
  /// finalized dataset are allowed — this is not a general setter.
  Status RestoreVersion(uint64_t version);

  // ---- Sizes ----

  size_t num_sources() const { return source_names_.size(); }
  size_t num_triples() const { return dict_.size(); }
  size_t num_domains() const { return domain_names_.size(); }

  // ---- Triples & labels ----

  const Triple& triple(TripleId t) const { return dict_.Get(t); }
  TripleId FindTriple(const Triple& t) const { return dict_.Lookup(t); }
  Label label(TripleId t) const { return labels_[t]; }
  DomainId domain(TripleId t) const { return domains_[t]; }
  const std::string& domain_name(DomainId d) const { return domain_names_[d]; }

  /// Triples labeled true / triples with any label (as bitsets over ids).
  /// Valid after Finalize().
  const DynamicBitset& true_mask() const { return true_mask_; }
  const DynamicBitset& labeled_mask() const { return labeled_mask_; }

  size_t num_labeled() const { return labeled_mask_.Count(); }
  size_t num_true() const { return true_mask_.Count(); }

  // ---- Sources & observations ----

  const std::string& source_name(SourceId s) const { return source_names_[s]; }

  /// Id of the source named `name`, or an error if unknown.
  StatusOr<SourceId> FindSource(const std::string& name) const;

  /// The output set Oi of a source, as a bitset over triple ids.
  const DynamicBitset& output(SourceId s) const { return outputs_[s]; }

  bool provides(SourceId s, TripleId t) const { return outputs_[s].Test(t); }

  /// Sources providing t (St), ascending. Valid after Finalize().
  const std::vector<SourceId>& providers(TripleId t) const {
    return providers_[t];
  }

  /// Sources in scope for t: those that provide at least one triple in t's
  /// domain. Every provider of t is in scope. Valid after Finalize().
  const std::vector<SourceId>& in_scope_sources(TripleId t) const {
    return domain_sources_[domains_[t]];
  }

  bool in_scope(SourceId s, TripleId t) const {
    return source_covers_domain_[s].Test(domains_[t]);
  }

  /// Whether `s` provides any triple of domain `d` (the scope relation,
  /// keyed by domain instead of by triple). Valid after Finalize().
  bool covers_domain(SourceId s, DomainId d) const {
    return source_covers_domain_[s].Test(d);
  }

  /// Number of triples a source provides.
  size_t output_size(SourceId s) const { return outputs_[s].Count(); }

  /// Triples of domain d, ascending. Valid after Finalize().
  const std::vector<TripleId>& triples_in_domain(DomainId d) const {
    return domain_triples_[d];
  }

 private:
  DomainId InternDomain(const std::string& name);

  bool finalized_ = false;
  uint64_t version_ = 0;

  std::vector<std::string> source_names_;
  std::unordered_map<std::string, SourceId> source_index_;

  TripleDictionary dict_;
  std::vector<Label> labels_;
  std::vector<DomainId> domains_;

  std::vector<std::string> domain_names_;
  std::unordered_map<std::string, DomainId> domain_index_;

  // outputs_[s] is a bitset over triples; rebuilt to full width in
  // Finalize().
  std::vector<DynamicBitset> outputs_;
  // Sparse observations collected before Finalize().
  std::vector<std::vector<TripleId>> pending_observations_;

  // Derived (Finalize; maintained incrementally by ApplyBatch).
  std::vector<std::vector<SourceId>> providers_;
  std::vector<std::vector<SourceId>> domain_sources_;
  std::vector<std::vector<TripleId>> domain_triples_;
  std::vector<DynamicBitset> source_covers_domain_;
  DynamicBitset true_mask_;
  DynamicBitset labeled_mask_;
};

}  // namespace fuser

#endif  // FUSER_MODEL_DATASET_H_
