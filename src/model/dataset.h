// Dataset: sources, their output triples, domains/scopes, and gold labels.
//
// Implements the paper's data model (Section 2.1): a set of sources
// S = {S1..Sn}, outputs O = {O1..On}, and for each triple t the observation
// set Ot. Open-world semantics: a source's *non*-provision of t is an
// observation only if the source is "in scope" for t, i.e., provides some
// other triple in t's domain; otherwise the source is silent about t.
//
// Usage:
//   Dataset d;
//   SourceId s = d.AddSource("extractor-1");
//   TripleId t = d.AddTriple({"Obama", "profession", "president"}, "obama");
//   d.Provide(s, t);
//   d.SetLabel(t, /*is_true=*/true);
//   d.Finalize();
#ifndef FUSER_MODEL_DATASET_H_
#define FUSER_MODEL_DATASET_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitset.h"
#include "common/status.h"
#include "model/triple.h"

namespace fuser {

/// Gold-standard label of a triple.
enum class Label : uint8_t { kUnknown = 0, kFalse = 1, kTrue = 2 };

class Dataset {
 public:
  Dataset() = default;

  // Dataset owns large bitsets; keep it move-only to avoid accidental
  // deep copies.
  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  // ---- Construction (before Finalize) ----

  /// Registers a source; names must be unique.
  SourceId AddSource(const std::string& name);

  /// Interns a triple, assigning it to the domain named `domain` ("" means
  /// the default global domain). Re-adding an existing triple returns its
  /// id (and ignores a conflicting domain).
  TripleId AddTriple(const Triple& triple, const std::string& domain = "");

  /// Records that `source` outputs `triple` (Si |= t). Idempotent.
  void Provide(SourceId source, TripleId triple);

  /// Sets the gold label of a triple.
  void SetLabel(TripleId triple, bool is_true);

  /// Builds the derived indexes (provider lists, scope tables, gold
  /// bitsets). Must be called once, after which the dataset is immutable.
  Status Finalize();

  bool finalized() const { return finalized_; }

  // ---- Sizes ----

  size_t num_sources() const { return source_names_.size(); }
  size_t num_triples() const { return dict_.size(); }
  size_t num_domains() const { return domain_names_.size(); }

  // ---- Triples & labels ----

  const Triple& triple(TripleId t) const { return dict_.Get(t); }
  TripleId FindTriple(const Triple& t) const { return dict_.Lookup(t); }
  Label label(TripleId t) const { return labels_[t]; }
  DomainId domain(TripleId t) const { return domains_[t]; }
  const std::string& domain_name(DomainId d) const { return domain_names_[d]; }

  /// Triples labeled true / triples with any label (as bitsets over ids).
  /// Valid after Finalize().
  const DynamicBitset& true_mask() const { return true_mask_; }
  const DynamicBitset& labeled_mask() const { return labeled_mask_; }

  size_t num_labeled() const { return labeled_mask_.Count(); }
  size_t num_true() const { return true_mask_.Count(); }

  // ---- Sources & observations ----

  const std::string& source_name(SourceId s) const { return source_names_[s]; }

  /// Id of the source named `name`, or an error if unknown.
  StatusOr<SourceId> FindSource(const std::string& name) const;

  /// The output set Oi of a source, as a bitset over triple ids.
  const DynamicBitset& output(SourceId s) const { return outputs_[s]; }

  bool provides(SourceId s, TripleId t) const { return outputs_[s].Test(t); }

  /// Sources providing t (St), ascending. Valid after Finalize().
  const std::vector<SourceId>& providers(TripleId t) const {
    return providers_[t];
  }

  /// Sources in scope for t: those that provide at least one triple in t's
  /// domain. Every provider of t is in scope. Valid after Finalize().
  const std::vector<SourceId>& in_scope_sources(TripleId t) const {
    return domain_sources_[domains_[t]];
  }

  bool in_scope(SourceId s, TripleId t) const {
    return source_covers_domain_[s].Test(domains_[t]);
  }

  /// Number of triples a source provides.
  size_t output_size(SourceId s) const { return outputs_[s].Count(); }

 private:
  DomainId InternDomain(const std::string& name);

  bool finalized_ = false;

  std::vector<std::string> source_names_;
  std::unordered_map<std::string, SourceId> source_index_;

  TripleDictionary dict_;
  std::vector<Label> labels_;
  std::vector<DomainId> domains_;

  std::vector<std::string> domain_names_;
  std::unordered_map<std::string, DomainId> domain_index_;

  // outputs_[s] is a bitset over triples; rebuilt to full width in
  // Finalize().
  std::vector<DynamicBitset> outputs_;
  // Sparse observations collected before Finalize().
  std::vector<std::vector<TripleId>> pending_observations_;

  // Derived (Finalize).
  std::vector<std::vector<SourceId>> providers_;
  std::vector<std::vector<SourceId>> domain_sources_;
  std::vector<DynamicBitset> source_covers_domain_;
  DynamicBitset true_mask_;
  DynamicBitset labeled_mask_;
};

}  // namespace fuser

#endif  // FUSER_MODEL_DATASET_H_
