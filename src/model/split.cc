#include "model/split.h"

#include <vector>

namespace fuser {

StatusOr<TrainTestSplit> StratifiedSplit(const Dataset& dataset,
                                         double train_fraction, Rng* rng) {
  if (!dataset.finalized()) {
    return Status::FailedPrecondition("dataset not finalized");
  }
  if (train_fraction < 0.0 || train_fraction > 1.0) {
    return Status::InvalidArgument("train_fraction must be in [0,1]");
  }
  std::vector<TripleId> true_ids;
  std::vector<TripleId> false_ids;
  dataset.labeled_mask().ForEach([&](size_t t) {
    if (dataset.label(static_cast<TripleId>(t)) == Label::kTrue) {
      true_ids.push_back(static_cast<TripleId>(t));
    } else {
      false_ids.push_back(static_cast<TripleId>(t));
    }
  });

  TrainTestSplit split;
  split.train = DynamicBitset(dataset.num_triples());
  split.test = DynamicBitset(dataset.num_triples());

  auto assign = [&](std::vector<TripleId>* ids) {
    rng->Shuffle(ids);
    size_t n_train = static_cast<size_t>(
        train_fraction * static_cast<double>(ids->size()) + 0.5);
    for (size_t i = 0; i < ids->size(); ++i) {
      if (i < n_train) {
        split.train.Set((*ids)[i]);
      } else {
        split.test.Set((*ids)[i]);
      }
    }
  };
  assign(&true_ids);
  assign(&false_ids);
  return split;
}

TrainTestSplit FullGoldSplit(const Dataset& dataset) {
  TrainTestSplit split;
  split.train = dataset.labeled_mask();
  split.test = dataset.labeled_mask();
  return split;
}

}  // namespace fuser
