#include "model/dataset_io.h"

#include <string>
#include <vector>

#include "common/csv.h"
#include "common/string_util.h"

namespace fuser {

StatusOr<Dataset> LoadDataset(const std::string& observations_path,
                              const std::string& gold_path) {
  FUSER_ASSIGN_OR_RETURN(std::vector<CsvRow> rows,
                         ReadCsvFile(observations_path, '\t'));
  Dataset dataset;
  std::unordered_map<std::string, SourceId> seen_sources;
  for (size_t i = 0; i < rows.size(); ++i) {
    const CsvRow& row = rows[i];
    if (row.size() != 4 && row.size() != 5) {
      return Status::InvalidArgument(StrFormat(
          "%s: row %zu has %zu fields, want 4 or 5", observations_path.c_str(),
          i + 1, row.size()));
    }
    SourceId source;
    auto it = seen_sources.find(row[0]);
    if (it != seen_sources.end()) {
      source = it->second;
    } else {
      source = dataset.AddSource(row[0]);
      seen_sources.emplace(row[0], source);
    }
    const std::string domain = row.size() == 5 ? row[4] : "";
    TripleId t = dataset.AddTriple({row[1], row[2], row[3]}, domain);
    dataset.Provide(source, t);
  }
  if (!gold_path.empty()) {
    FUSER_ASSIGN_OR_RETURN(std::vector<CsvRow> gold_rows,
                           ReadCsvFile(gold_path, '\t'));
    for (size_t i = 0; i < gold_rows.size(); ++i) {
      const CsvRow& row = gold_rows[i];
      if (row.size() != 4) {
        return Status::InvalidArgument(
            StrFormat("%s: row %zu has %zu fields, want 4", gold_path.c_str(),
                      i + 1, row.size()));
      }
      Triple triple{row[0], row[1], row[2]};
      TripleId t = dataset.FindTriple(triple);
      if (t == kInvalidTriple) {
        // Gold triples not provided by any source carry no observation and
        // are skipped (the paper evaluates only provided triples).
        continue;
      }
      if (row[3] == "true") {
        dataset.SetLabel(t, true);
      } else if (row[3] == "false") {
        dataset.SetLabel(t, false);
      } else {
        return Status::InvalidArgument(
            StrFormat("%s: row %zu has label '%s', want true|false",
                      gold_path.c_str(), i + 1, row[3].c_str()));
      }
    }
  }
  FUSER_RETURN_IF_ERROR(dataset.Finalize());
  return dataset;
}

Status SaveObservations(const Dataset& dataset, const std::string& path) {
  if (!dataset.finalized()) {
    return Status::FailedPrecondition("dataset not finalized");
  }
  std::vector<CsvRow> rows;
  for (SourceId s = 0; s < dataset.num_sources(); ++s) {
    dataset.output(s).ForEach([&](size_t t) {
      const Triple& triple = dataset.triple(static_cast<TripleId>(t));
      CsvRow row = {dataset.source_name(s), triple.subject, triple.predicate,
                    triple.object};
      const std::string& domain =
          dataset.domain_name(dataset.domain(static_cast<TripleId>(t)));
      if (!domain.empty()) row.push_back(domain);
      rows.push_back(std::move(row));
    });
  }
  return WriteCsvFile(path, rows, '\t');
}

Status SaveGold(const Dataset& dataset, const std::string& path) {
  if (!dataset.finalized()) {
    return Status::FailedPrecondition("dataset not finalized");
  }
  std::vector<CsvRow> rows;
  for (TripleId t = 0; t < dataset.num_triples(); ++t) {
    if (dataset.label(t) == Label::kUnknown) continue;
    const Triple& triple = dataset.triple(t);
    rows.push_back({triple.subject, triple.predicate, triple.object,
                    dataset.label(t) == Label::kTrue ? "true" : "false"});
  }
  return WriteCsvFile(path, rows, '\t');
}

}  // namespace fuser
