#include "model/dataset_io.h"

#include <string>
#include <vector>

#include "common/csv.h"
#include "common/string_util.h"

namespace fuser {

StatusOr<Dataset> LoadDataset(const std::string& observations_path,
                              const std::string& gold_path) {
  // One parser for both entry points: parse into a batch, replay it into a
  // fresh dataset.
  FUSER_ASSIGN_OR_RETURN(ObservationBatch batch,
                         LoadObservationBatch(observations_path, gold_path));
  Dataset dataset;
  std::unordered_map<std::string, SourceId> seen_sources;
  for (const Observation& obs : batch.observations) {
    SourceId source;
    auto it = seen_sources.find(obs.source);
    if (it != seen_sources.end()) {
      source = it->second;
    } else {
      source = dataset.AddSource(obs.source);
      seen_sources.emplace(obs.source, source);
    }
    TripleId t = dataset.AddTriple(obs.triple, obs.domain);
    dataset.Provide(source, t);
  }
  for (const LabelUpdate& label : batch.labels) {
    TripleId t = dataset.FindTriple(label.triple);
    if (t == kInvalidTriple) {
      // Gold triples not provided by any source carry no observation and
      // are skipped (the paper evaluates only provided triples).
      continue;
    }
    dataset.SetLabel(t, label.is_true);
  }
  FUSER_RETURN_IF_ERROR(dataset.Finalize());
  return dataset;
}

StatusOr<ObservationBatch> LoadObservationBatch(
    const std::string& observations_path, const std::string& gold_path) {
  ObservationBatch batch;
  if (!observations_path.empty()) {
    FUSER_ASSIGN_OR_RETURN(std::vector<CsvRow> rows,
                           ReadCsvFile(observations_path, '\t'));
    batch.observations.reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      const CsvRow& row = rows[i];
      if (row.size() != 4 && row.size() != 5) {
        return Status::InvalidArgument(
            StrFormat("%s: row %zu has %zu fields, want 4 or 5",
                      observations_path.c_str(), i + 1, row.size()));
      }
      Observation obs;
      obs.source = row[0];
      obs.triple = {row[1], row[2], row[3]};
      if (row.size() == 5) obs.domain = row[4];
      batch.observations.push_back(std::move(obs));
    }
  }
  if (!gold_path.empty()) {
    FUSER_ASSIGN_OR_RETURN(std::vector<CsvRow> rows,
                           ReadCsvFile(gold_path, '\t'));
    batch.labels.reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      const CsvRow& row = rows[i];
      if (row.size() != 4) {
        return Status::InvalidArgument(
            StrFormat("%s: row %zu has %zu fields, want 4", gold_path.c_str(),
                      i + 1, row.size()));
      }
      if (row[3] != "true" && row[3] != "false") {
        return Status::InvalidArgument(
            StrFormat("%s: row %zu has label '%s', want true|false",
                      gold_path.c_str(), i + 1, row[3].c_str()));
      }
      batch.labels.push_back({{row[0], row[1], row[2]}, row[3] == "true"});
    }
  }
  return batch;
}

Status SaveObservations(const Dataset& dataset, const std::string& path) {
  if (!dataset.finalized()) {
    return Status::FailedPrecondition("dataset not finalized");
  }
  std::vector<CsvRow> rows;
  for (SourceId s = 0; s < dataset.num_sources(); ++s) {
    dataset.output(s).ForEach([&](size_t t) {
      const TripleView triple = dataset.triple(static_cast<TripleId>(t));
      CsvRow row = {std::string(dataset.source_name(s)),
                    std::string(triple.subject), std::string(triple.predicate),
                    std::string(triple.object)};
      const std::string_view domain =
          dataset.domain_name(dataset.domain(static_cast<TripleId>(t)));
      if (!domain.empty()) row.emplace_back(domain);
      rows.push_back(std::move(row));
    });
  }
  return WriteCsvFile(path, rows, '\t');
}

Status SaveGold(const Dataset& dataset, const std::string& path) {
  if (!dataset.finalized()) {
    return Status::FailedPrecondition("dataset not finalized");
  }
  std::vector<CsvRow> rows;
  for (TripleId t = 0; t < dataset.num_triples(); ++t) {
    if (dataset.label(t) == Label::kUnknown) continue;
    const TripleView triple = dataset.triple(t);
    rows.push_back({std::string(triple.subject), std::string(triple.predicate),
                    std::string(triple.object),
                    dataset.label(t) == Label::kTrue ? "true" : "false"});
  }
  return WriteCsvFile(path, rows, '\t');
}

}  // namespace fuser
