#include "model/triple.h"

#include "common/bit_util.h"
#include "common/logging.h"

namespace fuser {

namespace {
// FNV-1a over a string, continuing from `h`.
size_t HashCombine(size_t h, std::string_view s) {
  constexpr size_t kPrime = 1099511628211ULL;
  for (char c : s) {
    h ^= static_cast<size_t>(static_cast<unsigned char>(c));
    h *= kPrime;
  }
  h ^= 0xFF;  // field separator so {"ab",""} != {"a","b"}
  h *= kPrime;
  return h;
}

std::string ToStringImpl(std::string_view s, std::string_view p,
                         std::string_view o) {
  std::string out;
  out.reserve(s.size() + p.size() + o.size() + 6);
  out.append("{");
  out.append(s);
  out.append(", ");
  out.append(p);
  out.append(", ");
  out.append(o);
  out.append("}");
  return out;
}
}  // namespace

std::string Triple::ToString() const {
  return ToStringImpl(subject, predicate, object);
}

std::string TripleView::ToString() const {
  return ToStringImpl(subject, predicate, object);
}

size_t TripleHash::operator()(const Triple& t) const {
  size_t h = 14695981039346656037ULL;
  h = HashCombine(h, t.subject);
  h = HashCombine(h, t.predicate);
  h = HashCombine(h, t.object);
  return h;
}

uint64_t TripleDictionary::HashRefs(StringRef s, StringRef p,
                                    StringRef o) const {
  // MixMaskPair ends in a bare multiply, which leaves its low bits weak
  // for structured inputs — and packed refs are highly structured
  // (sequential 40-bit offsets above a near-constant 24-bit length). The
  // slot index is `hash & mask`, so run a full avalanche over the mix.
  return Avalanche64(
      MixMaskPair(s.packed(), MixMaskPair(p.packed(), o.packed())));
}

void TripleDictionary::MaybeGrow() {
  if (slots_.empty()) {
    slots_.assign(64, kEmptySlot);
    return;
  }
  if (size() * 10 < slots_.size() * 7) return;
  std::vector<uint32_t> old = std::move(slots_);
  slots_.assign(old.size() * 2, kEmptySlot);
  for (uint32_t id : old) {
    if (id != kEmptySlot) InsertSlot(id);
  }
}

void TripleDictionary::InsertSlot(TripleId id) {
  const size_t mask = slots_.size() - 1;
  size_t i = HashRefs(subjects_[id], predicates_[id], objects_[id]) & mask;
  while (slots_[i] != kEmptySlot) i = (i + 1) & mask;
  slots_[i] = id;
}

TripleId TripleDictionary::Intern(const TripleView& t) {
  FUSER_CHECK(interner_ != nullptr && index_built_);
  const StringRef s = interner_->Intern(t.subject);
  const StringRef p = interner_->Intern(t.predicate);
  const StringRef o = interner_->Intern(t.object);
  MaybeGrow();
  const size_t mask = slots_.size() - 1;
  size_t i = HashRefs(s, p, o) & mask;
  while (slots_[i] != kEmptySlot) {
    const TripleId id = slots_[i];
    // Refs are canonical (the interner dedups), so equality is pure ref
    // comparison — no string bytes touched.
    if (subjects_[id] == s && predicates_[id] == p && objects_[id] == o) {
      return id;
    }
    i = (i + 1) & mask;
  }
  const TripleId id = static_cast<TripleId>(size());
  subjects_.push_back(s);
  predicates_.push_back(p);
  objects_.push_back(o);
  slots_[i] = id;
  return id;
}

TripleId TripleDictionary::Lookup(const TripleView& t) const {
  FUSER_CHECK(interner_ != nullptr && index_built_);
  if (slots_.empty()) return kInvalidTriple;
  const StringRef s = interner_->Find(t.subject);
  const StringRef p = interner_->Find(t.predicate);
  const StringRef o = interner_->Find(t.object);
  if (!s.valid() || !p.valid() || !o.valid()) return kInvalidTriple;
  const size_t mask = slots_.size() - 1;
  size_t i = HashRefs(s, p, o) & mask;
  while (slots_[i] != kEmptySlot) {
    const TripleId id = slots_[i];
    if (subjects_[id] == s && predicates_[id] == p && objects_[id] == o) {
      return id;
    }
    i = (i + 1) & mask;
  }
  return kInvalidTriple;
}

TripleView TripleDictionary::Get(TripleId id) const {
  FUSER_CHECK_LT(id, size());
  const StringArena& arena = interner_->arena();
  return TripleView(arena.View(subjects_[id]), arena.View(predicates_[id]),
                    arena.View(objects_[id]));
}

void TripleDictionary::AttachColumns(const StringRef* subjects,
                                     const StringRef* predicates,
                                     const StringRef* objects, size_t n) {
  subjects_.Attach(subjects, n);
  predicates_.Attach(predicates, n);
  objects_.Attach(objects, n);
  slots_.clear();
  slots_.shrink_to_fit();
  index_built_ = false;
}

void TripleDictionary::EnsureOwned() {
  subjects_.EnsureOwned();
  predicates_.EnsureOwned();
  objects_.EnsureOwned();
}

void TripleDictionary::BuildIndex() {
  if (index_built_) return;
  const size_t n = size();
  // Power-of-two capacity with load factor <= 0.7.
  size_t cap = 64;
  while (n * 10 >= cap * 7) cap *= 2;
  slots_.assign(cap, kEmptySlot);
  for (TripleId id = 0; id < n; ++id) {
    interner_->InsertExisting(subjects_[id]);
    interner_->InsertExisting(predicates_[id]);
    interner_->InsertExisting(objects_[id]);
    InsertSlot(id);
  }
  index_built_ = true;
}

}  // namespace fuser
