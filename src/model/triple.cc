#include "model/triple.h"

#include "common/logging.h"

namespace fuser {

namespace {
// FNV-1a over a string, continuing from `h`.
size_t HashCombine(size_t h, const std::string& s) {
  constexpr size_t kPrime = 1099511628211ULL;
  for (char c : s) {
    h ^= static_cast<size_t>(static_cast<unsigned char>(c));
    h *= kPrime;
  }
  h ^= 0xFF;  // field separator so {"ab",""} != {"a","b"}
  h *= kPrime;
  return h;
}
}  // namespace

std::string Triple::ToString() const {
  return "{" + subject + ", " + predicate + ", " + object + "}";
}

size_t TripleHash::operator()(const Triple& t) const {
  size_t h = 14695981039346656037ULL;
  h = HashCombine(h, t.subject);
  h = HashCombine(h, t.predicate);
  h = HashCombine(h, t.object);
  return h;
}

TripleId TripleDictionary::Intern(const Triple& t) {
  auto it = index_.find(t);
  if (it != index_.end()) {
    return it->second;
  }
  TripleId id = static_cast<TripleId>(triples_.size());
  triples_.push_back(t);
  index_.emplace(t, id);
  return id;
}

TripleId TripleDictionary::Lookup(const Triple& t) const {
  auto it = index_.find(t);
  return it == index_.end() ? kInvalidTriple : it->second;
}

const Triple& TripleDictionary::Get(TripleId id) const {
  FUSER_CHECK_LT(id, triples_.size());
  return triples_[id];
}

}  // namespace fuser
