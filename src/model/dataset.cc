#include "model/dataset.h"

#include <algorithm>

#include "common/logging.h"

namespace fuser {

SourceId Dataset::AddSource(const std::string& name) {
  FUSER_CHECK(!finalized_) << "AddSource after Finalize";
  auto it = source_index_.find(name);
  FUSER_CHECK(it == source_index_.end()) << "duplicate source name: " << name;
  SourceId id = static_cast<SourceId>(source_names_.size());
  source_names_.push_back(name);
  source_index_.emplace(name, id);
  pending_observations_.emplace_back();
  return id;
}

DomainId Dataset::InternDomain(const std::string& name) {
  auto it = domain_index_.find(name);
  if (it != domain_index_.end()) return it->second;
  DomainId id = static_cast<DomainId>(domain_names_.size());
  domain_names_.push_back(name);
  domain_index_.emplace(name, id);
  return id;
}

TripleId Dataset::AddTriple(const Triple& triple, const std::string& domain) {
  FUSER_CHECK(!finalized_) << "AddTriple after Finalize";
  TripleId existing = dict_.Lookup(triple);
  if (existing != kInvalidTriple) return existing;
  TripleId id = dict_.Intern(triple);
  labels_.push_back(Label::kUnknown);
  domains_.push_back(InternDomain(domain));
  return id;
}

void Dataset::Provide(SourceId source, TripleId triple) {
  FUSER_CHECK(!finalized_) << "Provide after Finalize";
  FUSER_CHECK_LT(source, pending_observations_.size());
  FUSER_CHECK_LT(triple, dict_.size());
  pending_observations_[source].push_back(triple);
}

void Dataset::SetLabel(TripleId triple, bool is_true) {
  FUSER_CHECK(!finalized_) << "SetLabel after Finalize";
  FUSER_CHECK_LT(triple, labels_.size());
  labels_[triple] = is_true ? Label::kTrue : Label::kFalse;
}

Status Dataset::Finalize() {
  if (finalized_) {
    return Status::FailedPrecondition("Finalize called twice");
  }
  if (source_names_.empty()) {
    return Status::InvalidArgument("dataset has no sources");
  }
  if (dict_.size() == 0) {
    return Status::InvalidArgument("dataset has no triples");
  }
  const size_t m = dict_.size();
  const size_t n = source_names_.size();
  const size_t num_domains = domain_names_.size();

  outputs_.assign(n, DynamicBitset(m));
  for (size_t s = 0; s < n; ++s) {
    for (TripleId t : pending_observations_[s]) {
      outputs_[s].Set(t);
    }
  }
  pending_observations_.clear();
  pending_observations_.shrink_to_fit();

  providers_.assign(m, {});
  for (size_t s = 0; s < n; ++s) {
    outputs_[s].ForEach([&](size_t t) {
      providers_[t].push_back(static_cast<SourceId>(s));
    });
  }

  source_covers_domain_.assign(n, DynamicBitset(num_domains));
  for (size_t s = 0; s < n; ++s) {
    outputs_[s].ForEach(
        [&](size_t t) { source_covers_domain_[s].Set(domains_[t]); });
  }
  domain_sources_.assign(num_domains, {});
  for (size_t s = 0; s < n; ++s) {
    source_covers_domain_[s].ForEach([&](size_t d) {
      domain_sources_[d].push_back(static_cast<SourceId>(s));
    });
  }

  true_mask_ = DynamicBitset(m);
  labeled_mask_ = DynamicBitset(m);
  for (size_t t = 0; t < m; ++t) {
    if (labels_[t] != Label::kUnknown) {
      labeled_mask_.Set(t);
      if (labels_[t] == Label::kTrue) true_mask_.Set(t);
    }
  }

  finalized_ = true;
  return Status::OK();
}

StatusOr<SourceId> Dataset::FindSource(const std::string& name) const {
  auto it = source_index_.find(name);
  if (it == source_index_.end()) {
    return Status::NotFound("unknown source: " + name);
  }
  return it->second;
}

}  // namespace fuser
