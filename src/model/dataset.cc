#include "model/dataset.h"

#include <algorithm>

#include "common/logging.h"

namespace fuser {

SourceId Dataset::AddSource(const std::string& name) {
  FUSER_CHECK(!finalized_) << "AddSource after Finalize";
  auto it = source_index_.find(name);
  FUSER_CHECK(it == source_index_.end()) << "duplicate source name: " << name;
  SourceId id = static_cast<SourceId>(source_names_.size());
  source_names_.push_back(name);
  source_index_.emplace(name, id);
  pending_observations_.emplace_back();
  return id;
}

DomainId Dataset::InternDomain(const std::string& name) {
  auto it = domain_index_.find(name);
  if (it != domain_index_.end()) return it->second;
  DomainId id = static_cast<DomainId>(domain_names_.size());
  domain_names_.push_back(name);
  domain_index_.emplace(name, id);
  return id;
}

TripleId Dataset::AddTriple(const Triple& triple, const std::string& domain) {
  FUSER_CHECK(!finalized_) << "AddTriple after Finalize";
  TripleId existing = dict_.Lookup(triple);
  if (existing != kInvalidTriple) return existing;
  TripleId id = dict_.Intern(triple);
  labels_.push_back(Label::kUnknown);
  domains_.push_back(InternDomain(domain));
  return id;
}

void Dataset::Provide(SourceId source, TripleId triple) {
  FUSER_CHECK(!finalized_) << "Provide after Finalize";
  FUSER_CHECK_LT(source, pending_observations_.size());
  FUSER_CHECK_LT(triple, dict_.size());
  pending_observations_[source].push_back(triple);
}

void Dataset::SetLabel(TripleId triple, bool is_true) {
  FUSER_CHECK(!finalized_) << "SetLabel after Finalize";
  FUSER_CHECK_LT(triple, labels_.size());
  labels_[triple] = is_true ? Label::kTrue : Label::kFalse;
}

Status Dataset::Finalize(bool allow_empty) {
  if (finalized_) {
    return Status::FailedPrecondition("Finalize called twice");
  }
  if (!allow_empty) {
    if (source_names_.empty()) {
      return Status::InvalidArgument("dataset has no sources");
    }
    if (dict_.size() == 0) {
      return Status::InvalidArgument("dataset has no triples");
    }
  }
  const size_t m = dict_.size();
  const size_t n = source_names_.size();
  const size_t num_domains = domain_names_.size();

  outputs_.assign(n, DynamicBitset(m));
  for (size_t s = 0; s < n; ++s) {
    for (TripleId t : pending_observations_[s]) {
      outputs_[s].Set(t);
    }
  }
  pending_observations_.clear();
  pending_observations_.shrink_to_fit();

  providers_.assign(m, {});
  for (size_t s = 0; s < n; ++s) {
    outputs_[s].ForEach([&](size_t t) {
      providers_[t].push_back(static_cast<SourceId>(s));
    });
  }

  source_covers_domain_.assign(n, DynamicBitset(num_domains));
  for (size_t s = 0; s < n; ++s) {
    outputs_[s].ForEach(
        [&](size_t t) { source_covers_domain_[s].Set(domains_[t]); });
  }
  domain_sources_.assign(num_domains, {});
  for (size_t s = 0; s < n; ++s) {
    source_covers_domain_[s].ForEach([&](size_t d) {
      domain_sources_[d].push_back(static_cast<SourceId>(s));
    });
  }

  domain_triples_.assign(num_domains, {});
  for (TripleId t = 0; t < m; ++t) {
    domain_triples_[domains_[t]].push_back(t);
  }

  true_mask_ = DynamicBitset(m);
  labeled_mask_ = DynamicBitset(m);
  for (size_t t = 0; t < m; ++t) {
    if (labels_[t] != Label::kUnknown) {
      labeled_mask_.Set(t);
      if (labels_[t] == Label::kTrue) true_mask_.Set(t);
    }
  }

  finalized_ = true;
  ++version_;
  return Status::OK();
}

Status Dataset::ApplyBatch(const ObservationBatch& batch,
                           DatasetDelta* delta) {
  FUSER_CHECK(delta != nullptr);
  if (!finalized_) {
    return Status::FailedPrecondition(
        "ApplyBatch before Finalize (use AddTriple/Provide instead)");
  }
  *delta = DatasetDelta{};
  delta->old_num_triples = dict_.size();
  delta->old_num_sources = source_names_.size();
  delta->old_num_domains = domain_names_.size();

  // Pass 0: pre-registered sources (sharded routing aligns shard-local
  // SourceIds with global ones by broadcasting new names in global order).
  for (const std::string& name : batch.register_sources) {
    if (source_index_.find(name) != source_index_.end()) continue;
    SourceId s = static_cast<SourceId>(source_names_.size());
    source_names_.push_back(name);
    source_index_.emplace(name, s);
    outputs_.emplace_back();  // resized to full width below
    source_covers_domain_.emplace_back();
    delta->new_sources.push_back(s);
  }

  // Pass 1: intern sources, domains, and triples; collect the provide list.
  std::vector<std::pair<SourceId, TripleId>> provides;
  provides.reserve(batch.observations.size());
  for (const Observation& obs : batch.observations) {
    SourceId s;
    auto it = source_index_.find(obs.source);
    if (it != source_index_.end()) {
      s = it->second;
    } else {
      s = static_cast<SourceId>(source_names_.size());
      source_names_.push_back(obs.source);
      source_index_.emplace(obs.source, s);
      outputs_.emplace_back();              // resized to full width below
      source_covers_domain_.emplace_back();
      delta->new_sources.push_back(s);
    }
    TripleId t = dict_.Lookup(obs.triple);
    if (t == kInvalidTriple) {
      t = dict_.Intern(obs.triple);
      labels_.push_back(Label::kUnknown);
      domains_.push_back(InternDomain(obs.domain));
      delta->new_triples.push_back(t);
    }
    // An existing triple keeps its original domain (as in AddTriple).
    provides.emplace_back(s, t);
  }

  // Resize the derived structures to the new widths.
  const size_t m = dict_.size();
  const size_t num_domains = domain_names_.size();
  for (DynamicBitset& output : outputs_) output.Resize(m);
  providers_.resize(m);
  for (DynamicBitset& covers : source_covers_domain_) {
    covers.Resize(num_domains);
  }
  domain_sources_.resize(num_domains);
  domain_triples_.resize(num_domains);
  for (TripleId t : delta->new_triples) {
    domain_triples_[domains_[t]].push_back(t);
  }
  true_mask_.Resize(m);
  labeled_mask_.Resize(m);

  // Pass 2: apply the provides, maintaining provider lists and scope tables.
  auto insert_sorted = [](std::vector<SourceId>* vec, SourceId s) {
    vec->insert(std::lower_bound(vec->begin(), vec->end(), s), s);
  };
  for (const auto& [s, t] : provides) {
    if (outputs_[s].Test(t)) continue;  // duplicate observation
    outputs_[s].Set(t);
    insert_sorted(&providers_[t], s);
    delta->new_provides.emplace_back(s, t);
    const DomainId d = domains_[t];
    if (!source_covers_domain_[s].Test(d)) {
      source_covers_domain_[s].Set(d);
      insert_sorted(&domain_sources_[d], s);
      delta->scope_gains.emplace_back(s, d);
    }
  }

  // Pass 3: labels. Labels for triples no source provides are skipped
  // (LoadDataset semantics: only provided triples are evaluated).
  for (const LabelUpdate& lu : batch.labels) {
    TripleId t = dict_.Lookup(lu.triple);
    if (t == kInvalidTriple || providers_[t].empty()) continue;
    const Label new_label = lu.is_true ? Label::kTrue : Label::kFalse;
    if (labels_[t] == new_label) continue;
    delta->label_changes.emplace_back(t, labels_[t]);
    labels_[t] = new_label;
    labeled_mask_.Set(t);
    true_mask_.Assign(t, lu.is_true);
  }

  // A no-op batch (all duplicates) leaves the version alone so runs scored
  // before it stay evaluable.
  if (!delta->empty()) ++version_;
  return Status::OK();
}

uint64_t Dataset::ContentFingerprint() const {
  FUSER_CHECK(finalized_) << "ContentFingerprint before Finalize";
  const uint64_t sizes[3] = {num_sources(), num_triples(), num_domains()};
  uint64_t h = HashBytes64(sizes, sizeof(sizes));
  h = HashBytes64(domains_.data(), domains_.size() * sizeof(DomainId), h);
  h = HashBytes64(labels_.data(), labels_.size() * sizeof(Label), h);
  for (const DynamicBitset& output : outputs_) {
    h = HashBytes64(output.words(), output.num_words() * sizeof(uint64_t), h);
  }
  return h;
}

Status Dataset::RestoreVersion(uint64_t version) {
  if (!finalized_) {
    return Status::FailedPrecondition("RestoreVersion before Finalize");
  }
  if (version < version_) {
    return Status::InvalidArgument("RestoreVersion cannot move backwards");
  }
  version_ = version;
  return Status::OK();
}

StatusOr<SourceId> Dataset::FindSource(const std::string& name) const {
  auto it = source_index_.find(name);
  if (it == source_index_.end()) {
    return Status::NotFound("unknown source: " + name);
  }
  return it->second;
}

}  // namespace fuser
