#include "model/dataset.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/logging.h"

namespace fuser {

Dataset::Dataset() : strings_(std::make_unique<StringInterner>()) {
  dict_.BindInterner(strings_.get());
}

SourceId Dataset::AddSource(std::string_view name) {
  FUSER_CHECK(!finalized_) << "AddSource after Finalize";
  const StringRef ref = strings_->Intern(name);
  const std::string_view key = strings_->arena().View(ref);
  auto it = source_index_.find(key);
  FUSER_CHECK(it == source_index_.end()) << "duplicate source name: " << name;
  SourceId id = static_cast<SourceId>(source_names_.size());
  source_names_.push_back(ref);
  source_index_.emplace(key, id);
  return id;
}

DomainId Dataset::InternDomain(std::string_view name) {
  auto it = domain_index_.find(name);
  if (it != domain_index_.end()) return it->second;
  const StringRef ref = strings_->Intern(name);
  DomainId id = static_cast<DomainId>(domain_names_.size());
  domain_names_.push_back(ref);
  domain_index_.emplace(strings_->arena().View(ref), id);
  return id;
}

TripleId Dataset::AddTriple(const TripleView& triple,
                            std::string_view domain) {
  FUSER_CHECK(!finalized_) << "AddTriple after Finalize";
  const size_t before = dict_.size();
  TripleId id = dict_.Intern(triple);
  if (dict_.size() > before) {
    labels_.push_back(Label::kUnknown);
    // An existing triple keeps its original domain; only new triples
    // intern theirs.
    domains_.push_back(InternDomain(domain));
  }
  return id;
}

void Dataset::Provide(SourceId source, TripleId triple) {
  FUSER_CHECK(!finalized_) << "Provide after Finalize";
  FUSER_CHECK_LT(source, source_names_.size());
  FUSER_CHECK_LT(triple, dict_.size());
  pending_observations_.emplace_back(source, triple);
}

void Dataset::SetLabel(TripleId triple, bool is_true) {
  FUSER_CHECK(!finalized_) << "SetLabel after Finalize";
  FUSER_CHECK_LT(triple, labels_.size());
  labels_.Set(triple, is_true ? Label::kTrue : Label::kFalse);
}

TripleId Dataset::FindTriple(const TripleView& t) const {
  EnsureLookups();
  return dict_.Lookup(t);
}

Status Dataset::Finalize(bool allow_empty) {
  if (finalized_) {
    return Status::FailedPrecondition("Finalize called twice");
  }
  if (!allow_empty) {
    if (source_names_.empty()) {
      return Status::InvalidArgument("dataset has no sources");
    }
    if (dict_.size() == 0) {
      return Status::InvalidArgument("dataset has no triples");
    }
  }
  const size_t m = dict_.size();
  const size_t n = source_names_.size();
  const size_t num_domains = domain_names_.size();

  outputs_.assign(n, DynamicBitset(m));
  for (const auto& [s, t] : pending_observations_) {
    outputs_[s].Set(t);
  }
  pending_observations_.clear();
  pending_observations_.shrink_to_fit();

  // Providers per triple, ascending source order: count, then fill.
  std::vector<uint32_t> counts(m, 0);
  for (size_t s = 0; s < n; ++s) {
    outputs_[s].ForEach([&](size_t t) { ++counts[t]; });
  }
  providers_.ResetWithCounts(counts);
  for (size_t s = 0; s < n; ++s) {
    outputs_[s].ForEach(
        [&](size_t t) { providers_.Fill(t, static_cast<SourceId>(s)); });
  }
  providers_.FinishFill();

  source_covers_domain_.assign(n, DynamicBitset(num_domains));
  for (size_t s = 0; s < n; ++s) {
    outputs_[s].ForEach(
        [&](size_t t) { source_covers_domain_[s].Set(domains_[t]); });
  }
  counts.assign(num_domains, 0);
  for (size_t s = 0; s < n; ++s) {
    source_covers_domain_[s].ForEach([&](size_t d) { ++counts[d]; });
  }
  domain_sources_.ResetWithCounts(counts);
  for (size_t s = 0; s < n; ++s) {
    source_covers_domain_[s].ForEach(
        [&](size_t d) { domain_sources_.Fill(d, static_cast<SourceId>(s)); });
  }
  domain_sources_.FinishFill();

  counts.assign(num_domains, 0);
  for (TripleId t = 0; t < m; ++t) ++counts[domains_[t]];
  domain_triples_.ResetWithCounts(counts);
  for (TripleId t = 0; t < m; ++t) domain_triples_.Fill(domains_[t], t);
  domain_triples_.FinishFill();

  true_mask_ = DynamicBitset(m);
  labeled_mask_ = DynamicBitset(m);
  for (size_t t = 0; t < m; ++t) {
    if (labels_[t] != Label::kUnknown) {
      labeled_mask_.Set(t);
      if (labels_[t] == Label::kTrue) true_mask_.Set(t);
    }
  }

  finalized_ = true;
  ++version_;
  return Status::OK();
}

Status Dataset::ApplyBatch(const ObservationBatch& batch,
                           DatasetDelta* delta) {
  FUSER_CHECK(delta != nullptr);
  if (!finalized_) {
    return Status::FailedPrecondition(
        "ApplyBatch before Finalize (use AddTriple/Provide instead)");
  }
  EnsureLookups();
  *delta = DatasetDelta{};
  delta->old_num_triples = dict_.size();
  delta->old_num_sources = source_names_.size();
  delta->old_num_domains = domain_names_.size();

  auto add_source = [&](std::string_view name) {
    const StringRef ref = strings_->Intern(name);
    SourceId s = static_cast<SourceId>(source_names_.size());
    source_names_.push_back(ref);
    source_index_.emplace(strings_->arena().View(ref), s);
    outputs_.emplace_back();              // resized to full width below
    source_covers_domain_.emplace_back();
    delta->new_sources.push_back(s);
    return s;
  };

  // Pass 0: pre-registered sources (sharded routing aligns shard-local
  // SourceIds with global ones by broadcasting new names in global order).
  for (const std::string& name : batch.register_sources) {
    if (source_index_.find(name) != source_index_.end()) continue;
    add_source(name);
  }

  // Pass 1: intern sources, domains, and triples; collect the provide list.
  std::vector<std::pair<SourceId, TripleId>> provides;
  provides.reserve(batch.observations.size());
  for (const Observation& obs : batch.observations) {
    SourceId s;
    auto it = source_index_.find(obs.source);
    if (it != source_index_.end()) {
      s = it->second;
    } else {
      s = add_source(obs.source);
    }
    const size_t before = dict_.size();
    TripleId t = dict_.Intern(obs.triple);
    if (dict_.size() > before) {
      labels_.push_back(Label::kUnknown);
      // An existing triple keeps its original domain (as in AddTriple).
      domains_.push_back(InternDomain(obs.domain));
      delta->new_triples.push_back(t);
    }
    provides.emplace_back(s, t);
  }

  // Resize the derived structures to the new widths. Unchanged widths are
  // no-ops, so an attached dataset is only promoted where it grows (or, in
  // pass 2/3, where a bit actually flips).
  const size_t m = dict_.size();
  const size_t num_domains = domain_names_.size();
  for (DynamicBitset& output : outputs_) output.Resize(m);
  if (m > providers_.num_rows()) {
    providers_.AppendRows(m - providers_.num_rows());
  }
  for (DynamicBitset& covers : source_covers_domain_) {
    covers.Resize(num_domains);
  }
  if (num_domains > domain_sources_.num_rows()) {
    domain_sources_.AppendRows(num_domains - domain_sources_.num_rows());
    domain_triples_.AppendRows(num_domains - domain_triples_.num_rows());
  }
  for (TripleId t : delta->new_triples) {
    domain_triples_.InsertSorted(domains_[t], t);
  }
  true_mask_.Resize(m);
  labeled_mask_.Resize(m);

  // Pass 2: apply the provides, maintaining provider lists and scope tables.
  for (const auto& [s, t] : provides) {
    if (outputs_[s].Test(t)) continue;  // duplicate observation
    outputs_[s].Set(t);
    providers_.InsertSorted(t, s);
    delta->new_provides.emplace_back(s, t);
    const DomainId d = domains_[t];
    if (!source_covers_domain_[s].Test(d)) {
      source_covers_domain_[s].Set(d);
      domain_sources_.InsertSorted(d, s);
      delta->scope_gains.emplace_back(s, d);
    }
  }

  // Pass 3: labels. Labels for triples no source provides are skipped
  // (LoadDataset semantics: only provided triples are evaluated).
  for (const LabelUpdate& lu : batch.labels) {
    TripleId t = dict_.Lookup(lu.triple);
    if (t == kInvalidTriple || providers_.row(t).empty()) continue;
    const Label new_label = lu.is_true ? Label::kTrue : Label::kFalse;
    if (labels_[t] == new_label) continue;
    delta->label_changes.emplace_back(t, labels_[t]);
    labels_.Set(t, new_label);
    labeled_mask_.Set(t);
    true_mask_.Assign(t, lu.is_true);
  }

  // Reclaim CSR garbage left by relocating inserts (amortized O(1)).
  providers_.MaybeCompact();
  domain_sources_.MaybeCompact();
  domain_triples_.MaybeCompact();

  // A no-op batch (all duplicates) leaves the version alone so runs scored
  // before it stay evaluable.
  if (!delta->empty()) ++version_;
  return Status::OK();
}

uint64_t Dataset::ContentFingerprint() const {
  FUSER_CHECK(finalized_) << "ContentFingerprint before Finalize";
  const uint64_t sizes[3] = {num_sources(), num_triples(), num_domains()};
  uint64_t h = HashBytes64(sizes, sizeof(sizes));
  h = HashBytes64(domains_.data(), domains_.size() * sizeof(DomainId), h);
  h = HashBytes64(labels_.data(), labels_.size() * sizeof(Label), h);
  for (const DynamicBitset& output : outputs_) {
    h = HashBytes64(output.words(), output.num_words() * sizeof(uint64_t), h);
  }
  return h;
}

Status Dataset::RestoreVersion(uint64_t version) {
  if (!finalized_) {
    return Status::FailedPrecondition("RestoreVersion before Finalize");
  }
  if (version < version_) {
    return Status::InvalidArgument("RestoreVersion cannot move backwards");
  }
  version_ = version;
  return Status::OK();
}

StatusOr<SourceId> Dataset::FindSource(std::string_view name) const {
  EnsureLookups();
  auto it = source_index_.find(name);
  if (it == source_index_.end()) {
    return Status::NotFound("unknown source: " + std::string(name));
  }
  return it->second;
}

void Dataset::EnsureLookups() const {
  if (lookups_ready_) return;
  const StringArena& arena = strings_->arena();
  source_index_.reserve(source_names_.size());
  for (size_t s = 0; s < source_names_.size(); ++s) {
    const StringRef ref = source_names_[s];
    strings_->InsertExisting(ref);
    source_index_.emplace(arena.View(ref), static_cast<SourceId>(s));
  }
  domain_index_.reserve(domain_names_.size());
  for (size_t d = 0; d < domain_names_.size(); ++d) {
    const StringRef ref = domain_names_[d];
    strings_->InsertExisting(ref);
    domain_index_.emplace(arena.View(ref), static_cast<DomainId>(d));
  }
  dict_.BuildIndex();
  lookups_ready_ = true;
}

std::unique_ptr<Dataset> Dataset::FromColumns(
    const DatasetColumns& c, bool borrow,
    std::shared_ptr<const void> keepalive) {
  auto d = std::make_unique<Dataset>();
  d->strings_ = std::make_unique<StringInterner>(c.arena_chunk_bytes);
  d->dict_.BindInterner(d->strings_.get());
  if (borrow) {
    d->strings_->mutable_arena()->AttachImage(c.arena_image,
                                              c.arena_image_bytes);
  } else {
    d->strings_->mutable_arena()->AdoptImageCopy(c.arena_image,
                                                 c.arena_image_bytes);
  }

  d->source_names_.Attach(c.source_names, c.num_sources);
  d->domain_names_.Attach(c.domain_names, c.num_domains);
  d->dict_.AttachColumns(c.subjects, c.predicates, c.objects, c.num_triples);
  d->domains_.Attach(c.domains, c.num_triples);
  d->labels_.Attach(reinterpret_cast<const Label*>(c.labels), c.num_triples);

  const size_t m = c.num_triples;
  const size_t words_per_output = (m + 63) / 64;
  d->outputs_.reserve(c.num_sources);
  for (size_t s = 0; s < c.num_sources; ++s) {
    d->outputs_.push_back(
        DynamicBitset::View(c.output_words + s * words_per_output, m));
  }

  d->providers_.Attach(c.provider_offsets, c.provider_counts, c.provider_pool,
                       m, c.provider_pool_len);
  d->domain_sources_.Attach(c.domain_source_offsets, c.domain_source_counts,
                            c.domain_source_pool, c.num_domains,
                            c.domain_source_pool_len);
  d->domain_triples_.Attach(c.domain_triple_offsets, c.domain_triple_counts,
                            c.domain_triple_pool, c.num_domains,
                            c.domain_triple_pool_len);

  const size_t words_per_cover = (c.num_domains + 63) / 64;
  d->source_covers_domain_.reserve(c.num_sources);
  for (size_t s = 0; s < c.num_sources; ++s) {
    d->source_covers_domain_.push_back(DynamicBitset::View(
        c.covers_words + s * words_per_cover, c.num_domains));
  }
  d->true_mask_ = DynamicBitset::View(c.true_words, m);
  d->labeled_mask_ = DynamicBitset::View(c.labeled_words, m);

  d->finalized_ = true;
  d->version_ = c.version;
  d->lookups_ready_ = false;

  if (borrow) {
    d->attached_ = true;
    d->keepalive_ = std::move(keepalive);
  } else {
    // Bulk-promote everything; the source arrays are transient (a decoded
    // section buffer), so nothing may stay borrowed.
    d->source_names_.EnsureOwned();
    d->domain_names_.EnsureOwned();
    d->dict_.EnsureOwned();
    d->domains_.EnsureOwned();
    d->labels_.EnsureOwned();
    for (DynamicBitset& output : d->outputs_) output.EnsureOwned();
    d->providers_.EnsureOwned();
    d->domain_sources_.EnsureOwned();
    d->domain_triples_.EnsureOwned();
    for (DynamicBitset& covers : d->source_covers_domain_) {
      covers.EnsureOwned();
    }
    d->true_mask_.EnsureOwned();
    d->labeled_mask_.EnsureOwned();
  }
  return d;
}

DatasetMemoryStats Dataset::MemoryStats() const {
  DatasetMemoryStats st;
  st.num_triples = num_triples();
  st.num_sources = num_sources();
  st.num_domains = num_domains();

  const StringArena& arena = strings_->arena();
  st.arena_bytes = arena.owned_bytes() + arena.mapped_bytes();

  size_t owned = arena.owned_bytes();
  size_t mapped = arena.mapped_bytes();

  auto add_column = [&](size_t size, size_t elem, size_t owned_bytes,
                        bool borrowed) {
    const size_t bytes = borrowed ? size * elem : owned_bytes;
    st.column_bytes += bytes;
    (borrowed ? mapped : owned) += bytes;
  };
  add_column(source_names_.size(), sizeof(StringRef),
             source_names_.owned_bytes(), source_names_.borrowed());
  add_column(domain_names_.size(), sizeof(StringRef),
             domain_names_.owned_bytes(), domain_names_.borrowed());
  add_column(dict_.size() * 3, sizeof(StringRef), dict_.column_owned_bytes(),
             dict_.columns_borrowed());
  add_column(domains_.size(), sizeof(DomainId), domains_.owned_bytes(),
             domains_.borrowed());
  add_column(labels_.size(), sizeof(Label), labels_.owned_bytes(),
             labels_.borrowed());

  auto add_csr = [&](size_t rows, size_t pool, size_t elem,
                     size_t owned_bytes, bool borrowed) {
    const size_t bytes =
        borrowed ? rows * (sizeof(uint64_t) + sizeof(uint32_t)) + pool * elem
                 : owned_bytes;
    st.csr_bytes += bytes;
    (borrowed ? mapped : owned) += bytes;
  };
  add_csr(providers_.num_rows(), providers_.pool_size(), sizeof(SourceId),
          providers_.owned_bytes(), providers_.borrowed());
  add_csr(domain_sources_.num_rows(), domain_sources_.pool_size(),
          sizeof(SourceId), domain_sources_.owned_bytes(),
          domain_sources_.borrowed());
  add_csr(domain_triples_.num_rows(), domain_triples_.pool_size(),
          sizeof(TripleId), domain_triples_.owned_bytes(),
          domain_triples_.borrowed());

  auto add_bitset = [&](const DynamicBitset& b) {
    const size_t bytes = b.num_words() * sizeof(uint64_t);
    st.bitset_bytes += bytes;
    (b.borrowed() ? mapped : owned) += bytes;
  };
  for (const DynamicBitset& output : outputs_) add_bitset(output);
  for (const DynamicBitset& covers : source_covers_domain_) {
    add_bitset(covers);
  }
  add_bitset(true_mask_);
  add_bitset(labeled_mask_);

  // Lookup structures: interner table, triple index, and the two name
  // maps (approximated at one cache line per entry of node + bucket cost).
  st.index_bytes = strings_->table_bytes() + dict_.index_bytes() +
                   (source_index_.size() + domain_index_.size()) * 64;
  owned += st.index_bytes;

  st.owned_bytes = owned;
  st.mapped_bytes = mapped;
  st.total_bytes = owned + mapped;
  st.storage_mode =
      attached_ ? (mapped > 0 ? "mmap" : "mmap+promoted") : "owned";
  return st;
}

}  // namespace fuser
