#include "net/wire.h"

#include <cstring>

#include "common/string_util.h"
#include "persist/binary_io.h"

namespace fuser {
namespace net {

using persist::ByteSink;
using persist::ByteSource;
using persist::Checksum64;
using persist::LoadU32LE;
using persist::LoadU64LE;

std::string EncodeFrame(MessageType type, const std::string& payload) {
  ByteSink sink;
  sink.WriteU32(kWireMagic);
  sink.WriteU32(kWireVersion);
  sink.WriteU32(static_cast<uint32_t>(type));
  sink.WriteU32(static_cast<uint32_t>(payload.size()));
  sink.WriteU64(Checksum64(payload.data(), payload.size()));
  sink.WriteRaw(payload.data(), payload.size());
  return sink.data();
}

void FrameReader::Append(const void* data, size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

StatusOr<bool> FrameReader::Next(WireFrame* frame) {
  if (!failed_.ok()) return failed_;
  // Reclaim consumed prefix before it grows without bound under pipelining.
  if (consumed_ > 0 && (consumed_ >= buffer_.size() || consumed_ > 65536)) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const uint8_t* base =
      reinterpret_cast<const uint8_t*>(buffer_.data()) + consumed_;
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return false;
  const uint32_t magic = LoadU32LE(base);
  if (magic != kWireMagic) {
    failed_ = Status::InvalidArgument("bad frame magic (not a fuser peer?)");
    return failed_;
  }
  const uint32_t version = LoadU32LE(base + 4);
  if (version != kWireVersion) {
    failed_ = Status::InvalidArgument(
        StrFormat("unsupported wire version %u (expected %u)", version,
                  kWireVersion));
    return failed_;
  }
  const uint32_t type = LoadU32LE(base + 8);
  const uint32_t length = LoadU32LE(base + 12);
  if (length > max_payload_bytes_) {
    failed_ = Status::InvalidArgument(
        StrFormat("frame payload of %u bytes exceeds the %zu-byte cap",
                  length, max_payload_bytes_));
    return failed_;
  }
  if (available < kFrameHeaderBytes + length) return false;
  const uint64_t expected_checksum = LoadU64LE(base + 16);
  const uint8_t* payload = base + kFrameHeaderBytes;
  if (Checksum64(payload, length) != expected_checksum) {
    failed_ = Status::InvalidArgument("frame payload failed its checksum");
    return failed_;
  }
  frame->type = static_cast<MessageType>(type);
  frame->payload.assign(reinterpret_cast<const char*>(payload), length);
  consumed_ += kFrameHeaderBytes + length;
  return true;
}

namespace {

/// Every Decode must consume the payload exactly: the frame length is
/// authoritative, so trailing bytes mean an encoder/decoder mismatch.
Status FinishDecode(const ByteSource& source) {
  if (!source.exhausted()) {
    return Status::InvalidArgument("trailing bytes after message payload");
  }
  return Status::OK();
}

Status ReadIdVector(ByteSource* source, std::vector<uint32_t>* out) {
  size_t count = 0;
  FUSER_RETURN_IF_ERROR(source->ReadCount(4, &count));
  out->resize(count);
  return source->ReadU32Array(out->data(), count);
}

}  // namespace

std::string ScoreRequest::Encode() const {
  ByteSink sink;
  sink.WriteU64(request_id);
  sink.WriteString(method);
  sink.WriteU32(triple);
  return sink.data();
}

Status ScoreRequest::Decode(const std::string& payload) {
  ByteSource source(payload.data(), payload.size());
  FUSER_RETURN_IF_ERROR(source.ReadU64(&request_id));
  FUSER_RETURN_IF_ERROR(source.ReadString(&method));
  FUSER_RETURN_IF_ERROR(source.ReadU32(&triple));
  return FinishDecode(source);
}

std::string ScoreBatchRequest::Encode() const {
  ByteSink sink;
  sink.WriteU64(request_id);
  sink.WriteString(method);
  sink.WriteU64(triples.size());
  for (TripleId t : triples) sink.WriteU32(t);
  return sink.data();
}

Status ScoreBatchRequest::Decode(const std::string& payload) {
  ByteSource source(payload.data(), payload.size());
  FUSER_RETURN_IF_ERROR(source.ReadU64(&request_id));
  FUSER_RETURN_IF_ERROR(source.ReadString(&method));
  FUSER_RETURN_IF_ERROR(ReadIdVector(&source, &triples));
  return FinishDecode(source);
}

std::string ScoreObservationRequest::Encode() const {
  ByteSink sink;
  sink.WriteU64(request_id);
  sink.WriteString(method);
  sink.WriteU64(providers.size());
  for (SourceId s : providers) sink.WriteU32(s);
  sink.WriteU64(in_scope.size());
  for (SourceId s : in_scope) sink.WriteU32(s);
  return sink.data();
}

Status ScoreObservationRequest::Decode(const std::string& payload) {
  ByteSource source(payload.data(), payload.size());
  FUSER_RETURN_IF_ERROR(source.ReadU64(&request_id));
  FUSER_RETURN_IF_ERROR(source.ReadString(&method));
  FUSER_RETURN_IF_ERROR(ReadIdVector(&source, &providers));
  FUSER_RETURN_IF_ERROR(ReadIdVector(&source, &in_scope));
  return FinishDecode(source);
}

std::string StatsRequest::Encode() const {
  ByteSink sink;
  sink.WriteU64(request_id);
  return sink.data();
}

Status StatsRequest::Decode(const std::string& payload) {
  ByteSource source(payload.data(), payload.size());
  FUSER_RETURN_IF_ERROR(source.ReadU64(&request_id));
  return FinishDecode(source);
}

std::string ScoreReply::Encode() const {
  ByteSink sink;
  sink.WriteU64(request_id);
  sink.WriteU64(snapshot_id);
  sink.WriteDouble(score);
  return sink.data();
}

Status ScoreReply::Decode(const std::string& payload) {
  ByteSource source(payload.data(), payload.size());
  FUSER_RETURN_IF_ERROR(source.ReadU64(&request_id));
  FUSER_RETURN_IF_ERROR(source.ReadU64(&snapshot_id));
  FUSER_RETURN_IF_ERROR(source.ReadDouble(&score));
  return FinishDecode(source);
}

std::string ScoreBatchReply::Encode() const {
  ByteSink sink;
  sink.WriteU64(request_id);
  sink.WriteU64(snapshot_id);
  sink.WriteU64(scores.size());
  for (double s : scores) sink.WriteDouble(s);
  return sink.data();
}

Status ScoreBatchReply::Decode(const std::string& payload) {
  ByteSource source(payload.data(), payload.size());
  FUSER_RETURN_IF_ERROR(source.ReadU64(&request_id));
  FUSER_RETURN_IF_ERROR(source.ReadU64(&snapshot_id));
  size_t count = 0;
  FUSER_RETURN_IF_ERROR(source.ReadCount(8, &count));
  scores.resize(count);
  FUSER_RETURN_IF_ERROR(source.ReadDoubleArray(scores.data(), count));
  return FinishDecode(source);
}

std::string StatsReply::Encode() const {
  ByteSink sink;
  sink.WriteU64(request_id);
  sink.WriteU64(snapshot_id);
  sink.WriteU64(dataset_version);
  sink.WriteU64(num_triples);
  sink.WriteU64(num_sources);
  sink.WriteU64(num_shards);
  sink.WriteU64(requests_served);
  return sink.data();
}

Status StatsReply::Decode(const std::string& payload) {
  ByteSource source(payload.data(), payload.size());
  FUSER_RETURN_IF_ERROR(source.ReadU64(&request_id));
  FUSER_RETURN_IF_ERROR(source.ReadU64(&snapshot_id));
  FUSER_RETURN_IF_ERROR(source.ReadU64(&dataset_version));
  FUSER_RETURN_IF_ERROR(source.ReadU64(&num_triples));
  FUSER_RETURN_IF_ERROR(source.ReadU64(&num_sources));
  FUSER_RETURN_IF_ERROR(source.ReadU64(&num_shards));
  FUSER_RETURN_IF_ERROR(source.ReadU64(&requests_served));
  return FinishDecode(source);
}

std::string ErrorReply::Encode() const {
  ByteSink sink;
  sink.WriteU64(request_id);
  sink.WriteU32(code);
  sink.WriteBool(fatal);
  sink.WriteString(message);
  return sink.data();
}

Status ErrorReply::Decode(const std::string& payload) {
  ByteSource source(payload.data(), payload.size());
  FUSER_RETURN_IF_ERROR(source.ReadU64(&request_id));
  FUSER_RETURN_IF_ERROR(source.ReadU32(&code));
  FUSER_RETURN_IF_ERROR(source.ReadBool(&fatal));
  FUSER_RETURN_IF_ERROR(source.ReadString(&message));
  return FinishDecode(source);
}

Status ErrorReply::ToStatus() const {
  StatusCode status_code = static_cast<StatusCode>(code);
  switch (status_code) {
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kInternal:
    case StatusCode::kUnimplemented:
    case StatusCode::kIoError:
    case StatusCode::kAlreadyExists:
      break;
    default:
      status_code = StatusCode::kInternal;
  }
  if (status_code == StatusCode::kOk) status_code = StatusCode::kInternal;
  return Status(status_code, StrFormat("server error: %s", message.c_str()));
}

ErrorReply ErrorReply::FromStatus(uint64_t request_id, const Status& status,
                                  bool fatal) {
  ErrorReply reply;
  reply.request_id = request_id;
  reply.code = static_cast<uint32_t>(status.code());
  reply.fatal = fatal;
  reply.message = status.message();
  return reply;
}

}  // namespace net
}  // namespace fuser
