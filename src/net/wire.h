// Binary wire protocol for fusion-as-a-service (src/net/fusion_server.h).
//
// Every message on the socket — request or response, either direction —
// is one length-prefixed frame built from the same primitives as the
// snapshot format (src/persist/binary_io.h): little-endian fixed-width
// fields, raw IEEE-754 doubles (the serving contract is *byte* identity
// of networked scores with in-process FusionService answers, so no text
// round-trip anywhere), and a word-wise FNV-1a checksum over the payload.
//
// Frame layout (24-byte header, then the payload):
//
//   offset  size  field
//        0     4  magic "FNET" (0x54454E46 little-endian)
//        4     4  protocol version (kWireVersion)
//        8     4  message type (MessageType)
//       12     4  payload length in bytes
//       16     8  payload checksum (persist::Checksum64)
//
// The parser (FrameReader) is incremental: bytes arrive in arbitrary
// splits (partial headers, partial payloads, many frames at once) and
// frames come out whole. Stream-integrity violations — wrong magic or
// version, a length prefix above the configured cap, a payload that fails
// its checksum — are *connection-fatal*: the reader reports an error and
// the server answers with a versioned kError frame before closing, because
// after such a violation the frame boundary itself can no longer be
// trusted. An unknown message type or a payload that fails to decode
// inside an intact frame is *request-fatal* only: the connection keeps its
// framing and the server answers kError and keeps going.
//
// Requests are processed in order per connection and every response
// carries the request's id, so clients may pipeline arbitrarily deep.
#ifndef FUSER_NET_WIRE_H_
#define FUSER_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/triple.h"

namespace fuser {
namespace net {

inline constexpr uint32_t kWireMagic = 0x54454E46u;  // "FNET" on the wire
inline constexpr uint32_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 24;
/// Default cap on a single frame's payload; a length prefix above the cap
/// is treated as stream corruption (it would otherwise drive an arbitrary
/// allocation from one flipped bit).
inline constexpr size_t kDefaultMaxPayloadBytes = 8u << 20;

enum class MessageType : uint32_t {
  // Requests.
  kScore = 1,
  kScoreBatch = 2,
  kScoreObservation = 3,
  kStats = 4,
  // Responses.
  kScoreReply = 17,
  kScoreBatchReply = 18,
  kScoreObservationReply = 19,
  kStatsReply = 20,
  kError = 31,
};

/// One decoded frame: the type plus the raw (checksum-verified) payload.
struct WireFrame {
  MessageType type = MessageType::kError;
  std::string payload;
};

/// Encodes one complete frame (header + payload) ready to write.
std::string EncodeFrame(MessageType type, const std::string& payload);

/// Incremental frame parser over a byte stream.
class FrameReader {
 public:
  explicit FrameReader(size_t max_payload_bytes = kDefaultMaxPayloadBytes)
      : max_payload_bytes_(max_payload_bytes) {}

  /// Appends raw bytes received from the socket (any split).
  void Append(const void* data, size_t size);

  /// Extracts the next complete frame. Returns true and fills `frame` when
  /// one is available, false when more bytes are needed. A non-OK status
  /// means the stream is corrupt (bad magic/version, oversized length,
  /// checksum mismatch) and the connection must be torn down — the reader
  /// stays in the failed state afterwards.
  StatusOr<bool> Next(WireFrame* frame);

  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  size_t max_payload_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already handed out as frames
  Status failed_ = Status::OK();
};

// ---------------------------------------------------------------------------
// Message payloads. Each struct encodes to / decodes from one frame
// payload; Decode returns InvalidArgument on truncated or trailing bytes
// (the frame length is authoritative, so a decode mismatch means a buggy
// or hostile peer, never a short read).
// ---------------------------------------------------------------------------

struct ScoreRequest {
  uint64_t request_id = 0;
  std::string method;  // MethodSpec name, e.g. "precrec-corr"
  TripleId triple = 0;

  std::string Encode() const;
  Status Decode(const std::string& payload);
};

struct ScoreBatchRequest {
  uint64_t request_id = 0;
  std::string method;
  std::vector<TripleId> triples;

  std::string Encode() const;
  Status Decode(const std::string& payload);
};

struct ScoreObservationRequest {
  uint64_t request_id = 0;
  std::string method;
  std::vector<SourceId> providers;
  std::vector<SourceId> in_scope;

  std::string Encode() const;
  Status Decode(const std::string& payload);
};

struct StatsRequest {
  uint64_t request_id = 0;

  std::string Encode() const;
  Status Decode(const std::string& payload);
};

/// Reply to kScore and kScoreObservation. `snapshot_id` names the
/// published FusionSnapshot the answer was read from, so a client (and the
/// reader-storm stress test) can pin-point exactly which state produced
/// the score even while a writer keeps publishing.
struct ScoreReply {
  uint64_t request_id = 0;
  uint64_t snapshot_id = 0;
  double score = 0.0;

  std::string Encode() const;
  Status Decode(const std::string& payload);
};

struct ScoreBatchReply {
  uint64_t request_id = 0;
  uint64_t snapshot_id = 0;
  std::vector<double> scores;

  std::string Encode() const;
  Status Decode(const std::string& payload);
};

struct StatsReply {
  uint64_t request_id = 0;
  uint64_t snapshot_id = 0;
  uint64_t dataset_version = 0;
  uint64_t num_triples = 0;
  uint64_t num_sources = 0;
  uint64_t num_shards = 0;  // 0 = unsharded backend
  uint64_t requests_served = 0;

  std::string Encode() const;
  Status Decode(const std::string& payload);
};

/// Versioned error reply: the failing request's id (0 when the request was
/// too malformed to carry one), the StatusCode, and a message. `fatal`
/// tells the client the server is closing the connection (stream-integrity
/// violations) rather than just failing this request.
struct ErrorReply {
  uint64_t request_id = 0;
  uint32_t code = 0;  // fuser::StatusCode
  bool fatal = false;
  std::string message;

  std::string Encode() const;
  Status Decode(const std::string& payload);

  Status ToStatus() const;
  static ErrorReply FromStatus(uint64_t request_id, const Status& status,
                               bool fatal);
};

}  // namespace net
}  // namespace fuser

#endif  // FUSER_NET_WIRE_H_
