// FusionClient: a small blocking C++ client for FusionServer.
//
// One client owns one TCP connection and is *not* thread-safe — use one
// client per thread (the load generator in bench/bench_network.cc does
// exactly that). Connect() retries with a fixed delay, which also covers
// the reconnect-after-server-restart case: keep the client object, call
// Connect() again.
//
// All calls are synchronous request/response except Pipeline*, which
// writes every request back-to-back before reading any reply — the server
// processes frames in order per connection, so deep pipelines amortize the
// per-round-trip latency without any client-side bookkeeping beyond
// matching request ids.
//
// Server-side failures arrive as kError frames and come back as the
// embedded Status; a fatal error (stream-integrity violation) closes the
// connection locally too, because the server is about to drop it.
#ifndef FUSER_NET_FUSION_CLIENT_H_
#define FUSER_NET_FUSION_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/triple.h"
#include "net/wire.h"

namespace fuser {
namespace net {

struct FusionClientOptions {
  /// Connect() attempts before giving up (covers server start-up races).
  int connect_attempts = 10;
  int retry_delay_ms = 100;
  /// Per-poll bound on waiting for the socket; a silent server fails the
  /// call with IoError instead of hanging the caller.
  int io_timeout_ms = 30000;
  size_t max_payload_bytes = kDefaultMaxPayloadBytes;
};

class FusionClient {
 public:
  FusionClient() = default;
  explicit FusionClient(FusionClientOptions options) : options_(options) {}
  ~FusionClient();

  FusionClient(const FusionClient&) = delete;
  FusionClient& operator=(const FusionClient&) = delete;

  /// Connects (with retries) to `host`:`port`. Reconnecting an already
  /// connected client closes the old socket first.
  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Single-triple posterior under the named method.
  StatusOr<ScoreReply> Score(const std::string& method, TripleId triple);

  /// Batched posteriors: one round trip, scores in request order,
  /// byte-identical to the server's in-process FusionService answers.
  StatusOr<ScoreBatchReply> ScoreBatch(const std::string& method,
                                       const std::vector<TripleId>& triples);

  /// Ad-hoc observation scoring (pattern-serving methods only).
  StatusOr<ScoreReply> ScoreObservation(
      const std::string& method, const std::vector<SourceId>& providers,
      const std::vector<SourceId>& in_scope);

  StatusOr<StatsReply> Stats();

  /// Pipelined load: writes all `batches` as kScoreBatch requests, then
  /// reads all replies. Fails on the first error reply.
  StatusOr<std::vector<ScoreBatchReply>> PipelineScoreBatches(
      const std::string& method,
      const std::vector<std::vector<TripleId>>& batches);

 private:
  Status WriteAll(const std::string& bytes);
  /// Blocks until one complete frame is available (or io_timeout_ms of
  /// socket silence).
  StatusOr<WireFrame> ReadFrame();
  /// Reads one frame and decodes it as `expected` with request id `id`;
  /// kError frames come back as their embedded Status.
  template <typename Reply>
  StatusOr<Reply> ReadReply(MessageType expected, uint64_t id);

  FusionClientOptions options_;
  int fd_ = -1;
  FrameReader reader_{kDefaultMaxPayloadBytes};
  uint64_t next_request_id_ = 1;
};

}  // namespace net
}  // namespace fuser

#endif  // FUSER_NET_FUSION_CLIENT_H_
