// FusionServer: the TCP front end over a ScoringBackend.
//
// Architecture: one acceptor thread plus N event-loop worker threads.
// Accepted connections are handed round-robin to workers; each worker owns
// its connections outright (per-connection read/write buffers, idle
// clock) and multiplexes them through a non-blocking epoll loop (poll
// fallback on non-Linux hosts, or when FUSER_NET_FORCE_POLL=1 — CI runs
// the suite both ways). Requests are parsed with net::FrameReader, so
// arbitrarily fragmented frames (slow-loris writers, single-byte drips)
// assemble correctly, and responses are written with partial-write
// handling under EPOLLOUT.
//
// Error containment, matching the wire contract (net/wire.h):
//  * stream-integrity violations (bad magic/version, oversized length
//    prefix, checksum mismatch) answer one fatal kError frame, flush, and
//    close — the frame boundary is gone;
//  * request-level failures (unknown message type, undecodable payload,
//    unknown method, out-of-range triple) answer kError and keep serving
//    the connection;
//  * a wedged peer cannot wedge the server: reads and writes never block,
//    and connections idle beyond the timeout are closed.
//
// Stop() is graceful: the listener closes first, then every worker drains
// — requests already received in full are answered and pending write
// buffers flushed (bounded by drain_timeout_ms) — so a client that
// pipelined a batch right before shutdown still gets its responses. The
// backend stays valid the whole time; a streaming writer may keep calling
// Update/PublishSnapshot on the engine behind it throughout.
#ifndef FUSER_NET_FUSION_SERVER_H_
#define FUSER_NET_FUSION_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/scoring_backend.h"
#include "net/wire.h"

namespace fuser {
namespace net {

struct FusionServerOptions {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (read it back
  /// via port()).
  uint16_t port = 0;
  /// Event-loop worker threads (each owns an epoll/poll loop).
  size_t num_workers = 2;
  /// Frames whose length prefix exceeds this answer a fatal error.
  size_t max_payload_bytes = kDefaultMaxPayloadBytes;
  /// Close connections with no traffic for this long; 0 disables.
  int idle_timeout_ms = 60000;
  /// Bound on the graceful-drain phase of Stop().
  int drain_timeout_ms = 5000;
  int listen_backlog = 128;
  /// Force the poll() event loop even where epoll is available.
  bool force_poll = false;
};

/// Monotonic counters, readable while the server runs.
struct ServerCounters {
  uint64_t connections_accepted = 0;
  uint64_t requests_served = 0;
  uint64_t errors_sent = 0;
};

class FusionServer {
 public:
  /// `backend` must outlive the server.
  FusionServer(const ScoringBackend* backend, FusionServerOptions options);
  ~FusionServer();  // Stop() if still running

  FusionServer(const FusionServer&) = delete;
  FusionServer& operator=(const FusionServer&) = delete;

  /// Binds, listens, and spawns the acceptor + worker threads. Fails on
  /// bind/listen errors (port in use, no permission).
  Status Start();

  /// Graceful shutdown: stop accepting, drain in-flight requests, join
  /// every thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (after Start); with options.port == 0 this is the
  /// kernel-assigned ephemeral port.
  uint16_t port() const { return port_; }

  ServerCounters counters() const;

 private:
  class Worker;

  void AcceptLoop();

  const ScoringBackend* backend_;
  FusionServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};  // wakes the acceptor out of poll()
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> errors_sent_{0};
  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread acceptor_;
};

}  // namespace net
}  // namespace fuser

#endif  // FUSER_NET_FUSION_SERVER_H_
