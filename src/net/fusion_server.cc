#include "net/fusion_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <unordered_map>

#if defined(__linux__)
#include <sys/epoll.h>
#define FUSER_NET_HAVE_EPOLL 1
#endif

#include "common/string_util.h"
#include "core/fusion_method.h"
#include "persist/binary_io.h"

namespace fuser {
namespace net {
namespace {

using Clock = std::chrono::steady_clock;

Status Errno(const char* what) {
  return Status::IoError(StrFormat("%s: %s", what, strerror(errno)));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

/// One ready descriptor out of Poller::Wait.
struct PollerEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

/// Readiness notification behind one interface so the worker loop is
/// identical under epoll and under the portable poll() fallback.
class Poller {
 public:
  virtual ~Poller() = default;
  virtual Status Add(int fd, bool want_write) = 0;
  virtual Status Update(int fd, bool want_write) = 0;
  virtual void Remove(int fd) = 0;
  virtual Status Wait(int timeout_ms, std::vector<PollerEvent>* events) = 0;
};

#if FUSER_NET_HAVE_EPOLL
class EpollPoller : public Poller {
 public:
  static StatusOr<std::unique_ptr<Poller>> Create() {
    const int fd = epoll_create1(EPOLL_CLOEXEC);
    if (fd < 0) return Errno("epoll_create1");
    return std::unique_ptr<Poller>(new EpollPoller(fd));
  }
  ~EpollPoller() override { close(epoll_fd_); }

  Status Add(int fd, bool want_write) override {
    return Control(EPOLL_CTL_ADD, fd, want_write);
  }
  Status Update(int fd, bool want_write) override {
    return Control(EPOLL_CTL_MOD, fd, want_write);
  }
  void Remove(int fd) override {
    epoll_event ev{};
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev);
  }
  Status Wait(int timeout_ms, std::vector<PollerEvent>* events) override {
    epoll_event ready[64];
    const int n = epoll_wait(epoll_fd_, ready, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status::OK();
      return Errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      PollerEvent event;
      event.fd = static_cast<int>(ready[i].data.fd);
      event.readable = (ready[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      event.writable = (ready[i].events & EPOLLOUT) != 0;
      event.error = (ready[i].events & EPOLLERR) != 0;
      events->push_back(event);
    }
    return Status::OK();
  }

 private:
  explicit EpollPoller(int fd) : epoll_fd_(fd) {}
  Status Control(int op, int fd, bool want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, op, fd, &ev) < 0) return Errno("epoll_ctl");
    return Status::OK();
  }
  int epoll_fd_;
};
#endif  // FUSER_NET_HAVE_EPOLL

class PollPoller : public Poller {
 public:
  Status Add(int fd, bool want_write) override {
    interest_[fd] = want_write;
    return Status::OK();
  }
  Status Update(int fd, bool want_write) override {
    interest_[fd] = want_write;
    return Status::OK();
  }
  void Remove(int fd) override { interest_.erase(fd); }
  Status Wait(int timeout_ms, std::vector<PollerEvent>* events) override {
    std::vector<pollfd> fds;
    fds.reserve(interest_.size());
    for (const auto& [fd, want_write] : interest_) {
      pollfd p{};
      p.fd = fd;
      p.events = static_cast<short>(POLLIN | (want_write ? POLLOUT : 0));
      fds.push_back(p);
    }
    const int n = poll(fds.data(), fds.size(), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status::OK();
      return Errno("poll");
    }
    for (const pollfd& p : fds) {
      if (p.revents == 0) continue;
      PollerEvent event;
      event.fd = p.fd;
      event.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      event.writable = (p.revents & POLLOUT) != 0;
      event.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      events->push_back(event);
    }
    return Status::OK();
  }

 private:
  std::unordered_map<int, bool> interest_;  // fd -> want_write
};

StatusOr<std::unique_ptr<Poller>> MakePoller(bool force_poll) {
  const char* env = std::getenv("FUSER_NET_FORCE_POLL");
  const bool env_poll = env != nullptr && env[0] == '1';
#if FUSER_NET_HAVE_EPOLL
  if (!force_poll && !env_poll) return EpollPoller::Create();
#else
  (void)force_poll;
  (void)env_poll;
#endif
  return std::unique_ptr<Poller>(new PollPoller());
}

/// The request's id is always the first payload field, so even a payload
/// that later fails to decode can usually be answered with the right id.
uint64_t PeekRequestId(const std::string& payload) {
  if (payload.size() < 8) return 0;
  return persist::LoadU64LE(payload.data());
}

}  // namespace

// ---------------------------------------------------------------------------
// Worker: one event-loop thread owning a set of connections.
// ---------------------------------------------------------------------------

class FusionServer::Worker {
 public:
  Worker(FusionServer* server, size_t max_payload_bytes)
      : server_(server), max_payload_bytes_(max_payload_bytes) {}

  ~Worker() {
    Join();
    for (auto& [fd, conn] : connections_) close(fd);
    if (wake_pipe_[0] >= 0) close(wake_pipe_[0]);
    if (wake_pipe_[1] >= 0) close(wake_pipe_[1]);
  }

  Status Start() {
    FUSER_ASSIGN_OR_RETURN(poller_,
                           MakePoller(server_->options_.force_poll));
    if (pipe(wake_pipe_) < 0) return Errno("pipe");
    FUSER_RETURN_IF_ERROR(SetNonBlocking(wake_pipe_[0]));
    FUSER_RETURN_IF_ERROR(SetNonBlocking(wake_pipe_[1]));
    FUSER_RETURN_IF_ERROR(poller_->Add(wake_pipe_[0], /*want_write=*/false));
    thread_ = std::thread([this] { Loop(); });
    return Status::OK();
  }

  /// Called from the acceptor thread: hand over a freshly accepted fd.
  void Enqueue(int fd) {
    {
      std::lock_guard<std::mutex> lock(inbox_mu_);
      inbox_.push_back(fd);
    }
    Wake();
  }

  void RequestStop() {
    stop_.store(true, std::memory_order_release);
    Wake();
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  struct Connection {
    FrameReader reader;
    std::string wbuf;
    size_t wpos = 0;
    Clock::time_point last_active;
    bool close_after_flush = false;
    bool want_write = false;

    explicit Connection(size_t max_payload)
        : reader(max_payload), last_active(Clock::now()) {}
    size_t pending_bytes() const { return wbuf.size() - wpos; }
  };

  void Wake() {
    const char byte = 1;
    // A full pipe already guarantees a pending wakeup.
    (void)!write(wake_pipe_[1], &byte, 1);
  }

  void Loop() {
    const int idle_ms = server_->options_.idle_timeout_ms;
    while (true) {
      const bool stopping = stop_.load(std::memory_order_acquire);
      if (stopping) {
        Drain();
        return;
      }
      std::vector<PollerEvent> events;
      // Bounded wait so idle sweeps and the stop flag are checked even on
      // a silent socket set.
      const int wait_ms = idle_ms > 0 ? std::min(idle_ms, 50) : 50;
      if (!poller_->Wait(wait_ms, &events).ok()) return;
      AdoptNewConnections();
      for (const PollerEvent& event : events) {
        if (event.fd == wake_pipe_[0]) {
          char scratch[256];
          while (read(wake_pipe_[0], scratch, sizeof(scratch)) > 0) {
          }
          continue;
        }
        auto it = connections_.find(event.fd);
        if (it == connections_.end()) continue;
        Connection& conn = it->second;
        bool alive = true;
        if (event.error) alive = false;
        if (alive && event.readable) alive = HandleReadable(event.fd, conn);
        if (alive && event.writable) alive = FlushWrites(event.fd, conn);
        if (!alive) CloseConnection(event.fd);
      }
      if (idle_ms > 0) SweepIdle(idle_ms);
    }
  }

  void AdoptNewConnections() {
    std::vector<int> fresh;
    {
      std::lock_guard<std::mutex> lock(inbox_mu_);
      fresh.swap(inbox_);
    }
    for (int fd : fresh) {
      if (!SetNonBlocking(fd).ok() ||
          !poller_->Add(fd, /*want_write=*/false).ok()) {
        close(fd);
        continue;
      }
      connections_.emplace(fd, Connection(max_payload_bytes_));
    }
  }

  /// Reads everything available; returns false when the connection died.
  bool HandleReadable(int fd, Connection& conn) {
    char buf[64 * 1024];
    bool got_bytes = false;
    while (true) {
      const ssize_t n = read(fd, buf, sizeof(buf));
      if (n > 0) {
        conn.reader.Append(buf, static_cast<size_t>(n));
        got_bytes = true;
        continue;
      }
      if (n == 0) return false;  // peer closed
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    if (got_bytes) conn.last_active = Clock::now();
    ProcessFrames(conn);
    return FlushWrites(fd, conn);
  }

  /// Pulls complete frames out of the read buffer and appends responses.
  void ProcessFrames(Connection& conn) {
    WireFrame frame;
    while (!conn.close_after_flush) {
      auto next = conn.reader.Next(&frame);
      if (!next.ok()) {
        // Stream integrity lost: one fatal error frame, then close.
        SendError(conn, ErrorReply::FromStatus(0, next.status(),
                                               /*fatal=*/true));
        conn.close_after_flush = true;
        return;
      }
      if (!*next) return;  // need more bytes
      Dispatch(frame, conn);
    }
  }

  void Dispatch(const WireFrame& frame, Connection& conn) {
    switch (frame.type) {
      case MessageType::kScore: {
        ScoreRequest req;
        Status decoded = req.Decode(frame.payload);
        if (!decoded.ok()) {
          SendError(conn, ErrorReply::FromStatus(PeekRequestId(frame.payload),
                                                 decoded, false));
          return;
        }
        auto spec = ParseMethodSpec(req.method);
        if (!spec.ok()) {
          SendError(conn, ErrorReply::FromStatus(req.request_id,
                                                 spec.status(), false));
          return;
        }
        auto scored = server_->backend_->Score(*spec, req.triple);
        if (!scored.ok()) {
          SendError(conn, ErrorReply::FromStatus(req.request_id,
                                                 scored.status(), false));
          return;
        }
        ScoreReply reply;
        reply.request_id = req.request_id;
        reply.snapshot_id = scored->snapshot_id;
        reply.score = scored->score;
        SendReply(conn, MessageType::kScoreReply, reply.Encode());
        return;
      }
      case MessageType::kScoreBatch: {
        ScoreBatchRequest req;
        Status decoded = req.Decode(frame.payload);
        if (!decoded.ok()) {
          SendError(conn, ErrorReply::FromStatus(PeekRequestId(frame.payload),
                                                 decoded, false));
          return;
        }
        auto spec = ParseMethodSpec(req.method);
        if (!spec.ok()) {
          SendError(conn, ErrorReply::FromStatus(req.request_id,
                                                 spec.status(), false));
          return;
        }
        auto scored = server_->backend_->ScoreBatch(*spec, req.triples);
        if (!scored.ok()) {
          SendError(conn, ErrorReply::FromStatus(req.request_id,
                                                 scored.status(), false));
          return;
        }
        ScoreBatchReply reply;
        reply.request_id = req.request_id;
        reply.snapshot_id = scored->snapshot_id;
        reply.scores = std::move(scored->scores);
        SendReply(conn, MessageType::kScoreBatchReply, reply.Encode());
        return;
      }
      case MessageType::kScoreObservation: {
        ScoreObservationRequest req;
        Status decoded = req.Decode(frame.payload);
        if (!decoded.ok()) {
          SendError(conn, ErrorReply::FromStatus(PeekRequestId(frame.payload),
                                                 decoded, false));
          return;
        }
        auto spec = ParseMethodSpec(req.method);
        if (!spec.ok()) {
          SendError(conn, ErrorReply::FromStatus(req.request_id,
                                                 spec.status(), false));
          return;
        }
        AdHocObservation observation;
        observation.providers = std::move(req.providers);
        observation.in_scope = std::move(req.in_scope);
        auto scored = server_->backend_->ScoreObservation(*spec, observation);
        if (!scored.ok()) {
          SendError(conn, ErrorReply::FromStatus(req.request_id,
                                                 scored.status(), false));
          return;
        }
        ScoreReply reply;
        reply.request_id = req.request_id;
        reply.snapshot_id = scored->snapshot_id;
        reply.score = scored->score;
        SendReply(conn, MessageType::kScoreObservationReply, reply.Encode());
        return;
      }
      case MessageType::kStats: {
        StatsRequest req;
        Status decoded = req.Decode(frame.payload);
        if (!decoded.ok()) {
          SendError(conn, ErrorReply::FromStatus(PeekRequestId(frame.payload),
                                                 decoded, false));
          return;
        }
        auto info = server_->backend_->Info();
        if (!info.ok()) {
          SendError(conn, ErrorReply::FromStatus(req.request_id,
                                                 info.status(), false));
          return;
        }
        StatsReply reply;
        reply.request_id = req.request_id;
        reply.snapshot_id = info->snapshot_id;
        reply.dataset_version = info->dataset_version;
        reply.num_triples = info->num_triples;
        reply.num_sources = info->num_sources;
        reply.num_shards = info->num_shards;
        reply.requests_served =
            server_->requests_served_.load(std::memory_order_relaxed);
        SendReply(conn, MessageType::kStatsReply, reply.Encode());
        return;
      }
      default:
        SendError(conn,
                  ErrorReply::FromStatus(
                      PeekRequestId(frame.payload),
                      Status::InvalidArgument(StrFormat(
                          "unknown message type %u",
                          static_cast<uint32_t>(frame.type))),
                      /*fatal=*/false));
        return;
    }
  }

  void SendReply(Connection& conn, MessageType type,
                 const std::string& payload) {
    conn.wbuf += EncodeFrame(type, payload);
    server_->requests_served_.fetch_add(1, std::memory_order_relaxed);
  }

  void SendError(Connection& conn, const ErrorReply& reply) {
    conn.wbuf += EncodeFrame(MessageType::kError, reply.Encode());
    server_->errors_sent_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Writes as much of the pending buffer as the socket accepts; returns
  /// false when the connection died or finished a close-after-flush.
  bool FlushWrites(int fd, Connection& conn) {
    while (conn.pending_bytes() > 0) {
      const ssize_t n = write(fd, conn.wbuf.data() + conn.wpos,
                              conn.pending_bytes());
      if (n > 0) {
        conn.wpos += static_cast<size_t>(n);
        conn.last_active = Clock::now();
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    if (conn.pending_bytes() == 0) {
      conn.wbuf.clear();
      conn.wpos = 0;
      if (conn.close_after_flush) return false;
      if (conn.want_write) {
        conn.want_write = false;
        (void)poller_->Update(fd, /*want_write=*/false);
      }
    } else if (!conn.want_write) {
      conn.want_write = true;
      (void)poller_->Update(fd, /*want_write=*/true);
    }
    return true;
  }

  void SweepIdle(int idle_ms) {
    const auto now = Clock::now();
    std::vector<int> expired;
    for (const auto& [fd, conn] : connections_) {
      const auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
                            now - conn.last_active)
                            .count();
      if (idle >= idle_ms) expired.push_back(fd);
    }
    for (int fd : expired) CloseConnection(fd);
  }

  /// Graceful-shutdown tail: answer every request already received in
  /// full, then flush pending responses until done or the drain deadline.
  void Drain() {
    AdoptNewConnections();
    const auto deadline =
        Clock::now() +
        std::chrono::milliseconds(server_->options_.drain_timeout_ms);
    // One final read sweep picks up requests that reached the kernel
    // buffer before the listener closed.
    std::vector<int> dead;
    for (auto& [fd, conn] : connections_) {
      if (!HandleReadable(fd, conn)) dead.push_back(fd);
    }
    for (int fd : dead) CloseConnection(fd);
    while (Clock::now() < deadline) {
      bool pending = false;
      dead.clear();
      for (auto& [fd, conn] : connections_) {
        if (!FlushWrites(fd, conn)) {
          dead.push_back(fd);
        } else if (conn.pending_bytes() > 0) {
          pending = true;
        }
      }
      for (int fd : dead) CloseConnection(fd);
      if (!pending) break;
      std::vector<PollerEvent> events;
      if (!poller_->Wait(20, &events).ok()) break;
    }
    std::vector<int> all;
    all.reserve(connections_.size());
    for (const auto& [fd, conn] : connections_) all.push_back(fd);
    for (int fd : all) CloseConnection(fd);
  }

  void CloseConnection(int fd) {
    poller_->Remove(fd);
    close(fd);
    connections_.erase(fd);
  }

  FusionServer* server_;
  size_t max_payload_bytes_;
  std::unique_ptr<Poller> poller_;
  int wake_pipe_[2] = {-1, -1};
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::mutex inbox_mu_;
  std::vector<int> inbox_;
  std::unordered_map<int, Connection> connections_;
};

// ---------------------------------------------------------------------------
// FusionServer
// ---------------------------------------------------------------------------

FusionServer::FusionServer(const ScoringBackend* backend,
                           FusionServerOptions options)
    : backend_(backend), options_(options) {
  if (options_.num_workers == 0) options_.num_workers = 1;
}

FusionServer::~FusionServer() { Stop(); }

Status FusionServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status failed = Errno("bind");
    close(listen_fd_);
    listen_fd_ = -1;
    return failed;
  }
  if (listen(listen_fd_, options_.listen_backlog) < 0) {
    Status failed = Errno("listen");
    close(listen_fd_);
    listen_fd_ = -1;
    return failed;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  &addr_len) < 0) {
    Status failed = Errno("getsockname");
    close(listen_fd_);
    listen_fd_ = -1;
    return failed;
  }
  port_ = ntohs(addr.sin_port);
  FUSER_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));
  if (pipe(stop_pipe_) < 0) {
    Status failed = Errno("pipe");
    close(listen_fd_);
    listen_fd_ = -1;
    return failed;
  }

  stopping_.store(false, std::memory_order_release);
  workers_.clear();
  for (size_t w = 0; w < options_.num_workers; ++w) {
    workers_.push_back(
        std::make_unique<Worker>(this, options_.max_payload_bytes));
    Status started = workers_.back()->Start();
    if (!started.ok()) {
      for (auto& worker : workers_) worker->RequestStop();
      workers_.clear();
      close(listen_fd_);
      listen_fd_ = -1;
      close(stop_pipe_[0]);
      close(stop_pipe_[1]);
      stop_pipe_[0] = stop_pipe_[1] = -1;
      return started;
    }
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

void FusionServer::AcceptLoop() {
  size_t next_worker = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = stop_pipe_[0];
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    const int n = poll(fds, 2, 500);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;  // Stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    while (true) {
      const int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) break;  // EAGAIN (or a transient error): back to poll
      const int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      connections_accepted_.fetch_add(1, std::memory_order_relaxed);
      workers_[next_worker]->Enqueue(fd);
      next_worker = (next_worker + 1) % workers_.size();
    }
  }
}

void FusionServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  const char byte = 1;
  (void)!write(stop_pipe_[1], &byte, 1);
  if (acceptor_.joinable()) acceptor_.join();
  // The listener closes before the workers drain: no new connections can
  // race the drain phase.
  close(listen_fd_);
  listen_fd_ = -1;
  for (auto& worker : workers_) worker->RequestStop();
  for (auto& worker : workers_) worker->Join();
  workers_.clear();
  close(stop_pipe_[0]);
  close(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;
}

ServerCounters FusionServer::counters() const {
  ServerCounters counters;
  counters.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  counters.requests_served =
      requests_served_.load(std::memory_order_relaxed);
  counters.errors_sent = errors_sent_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace net
}  // namespace fuser
