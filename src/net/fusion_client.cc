#include "net/fusion_client.h"

#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "common/string_util.h"

namespace fuser {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IoError(StrFormat("%s: %s", what, strerror(errno)));
}

}  // namespace

FusionClient::~FusionClient() { Close(); }

void FusionClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  reader_ = FrameReader(options_.max_payload_bytes);
}

Status FusionClient::Connect(const std::string& host, uint16_t port) {
  Close();
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  const std::string port_str = StrFormat("%u", port);
  Status last = Status::IoError("connect: no attempts made");
  for (int attempt = 0; attempt < options_.connect_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.retry_delay_ms));
    }
    addrinfo* result = nullptr;
    const int rc = getaddrinfo(host.c_str(), port_str.c_str(), &hints,
                               &result);
    if (rc != 0) {
      last = Status::IoError(
          StrFormat("getaddrinfo(%s): %s", host.c_str(), gai_strerror(rc)));
      continue;
    }
    int fd = -1;
    for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
      fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) continue;
      if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
      last = Errno("connect");
      close(fd);
      fd = -1;
    }
    freeaddrinfo(result);
    if (fd >= 0) {
      const int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      fd_ = fd;
      reader_ = FrameReader(options_.max_payload_bytes);
      return Status::OK();
    }
  }
  return last;
}

Status FusionClient::WriteAll(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = write(fd_, bytes.data() + written,
                            bytes.size() - written);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{};
      p.fd = fd_;
      p.events = POLLOUT;
      if (poll(&p, 1, options_.io_timeout_ms) <= 0) {
        Close();
        return Status::IoError("write timed out");
      }
      continue;
    }
    Status failed = Errno("write");
    Close();
    return failed;
  }
  return Status::OK();
}

StatusOr<WireFrame> FusionClient::ReadFrame() {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  WireFrame frame;
  while (true) {
    auto next = reader_.Next(&frame);
    if (!next.ok()) {
      Close();
      return next.status();
    }
    if (*next) return frame;
    pollfd p{};
    p.fd = fd_;
    p.events = POLLIN;
    const int ready = poll(&p, 1, options_.io_timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      Status failed = Errno("poll");
      Close();
      return failed;
    }
    if (ready == 0) {
      Close();
      return Status::IoError("read timed out waiting for a response frame");
    }
    char buf[64 * 1024];
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      reader_.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Status failed = n == 0
                        ? Status::IoError("server closed the connection")
                        : Errno("read");
    Close();
    return failed;
  }
}

template <typename Reply>
StatusOr<Reply> FusionClient::ReadReply(MessageType expected, uint64_t id) {
  FUSER_ASSIGN_OR_RETURN(WireFrame frame, ReadFrame());
  if (frame.type == MessageType::kError) {
    ErrorReply error;
    Status decoded = error.Decode(frame.payload);
    if (!decoded.ok()) {
      Close();
      return decoded;
    }
    if (error.fatal) Close();
    return error.ToStatus();
  }
  if (frame.type != expected) {
    Close();
    return Status::Internal(
        StrFormat("unexpected reply type %u (wanted %u)",
                  static_cast<uint32_t>(frame.type),
                  static_cast<uint32_t>(expected)));
  }
  Reply reply;
  Status decoded = reply.Decode(frame.payload);
  if (!decoded.ok()) {
    Close();
    return decoded;
  }
  if (reply.request_id != id) {
    Close();
    return Status::Internal(StrFormat(
        "response id %llu does not match request id %llu",
        static_cast<unsigned long long>(reply.request_id),
        static_cast<unsigned long long>(id)));
  }
  return reply;
}

StatusOr<ScoreReply> FusionClient::Score(const std::string& method,
                                         TripleId triple) {
  ScoreRequest request;
  request.request_id = next_request_id_++;
  request.method = method;
  request.triple = triple;
  FUSER_RETURN_IF_ERROR(
      WriteAll(EncodeFrame(MessageType::kScore, request.Encode())));
  return ReadReply<ScoreReply>(MessageType::kScoreReply, request.request_id);
}

StatusOr<ScoreBatchReply> FusionClient::ScoreBatch(
    const std::string& method, const std::vector<TripleId>& triples) {
  ScoreBatchRequest request;
  request.request_id = next_request_id_++;
  request.method = method;
  request.triples = triples;
  FUSER_RETURN_IF_ERROR(
      WriteAll(EncodeFrame(MessageType::kScoreBatch, request.Encode())));
  return ReadReply<ScoreBatchReply>(MessageType::kScoreBatchReply,
                                    request.request_id);
}

StatusOr<ScoreReply> FusionClient::ScoreObservation(
    const std::string& method, const std::vector<SourceId>& providers,
    const std::vector<SourceId>& in_scope) {
  ScoreObservationRequest request;
  request.request_id = next_request_id_++;
  request.method = method;
  request.providers = providers;
  request.in_scope = in_scope;
  FUSER_RETURN_IF_ERROR(WriteAll(
      EncodeFrame(MessageType::kScoreObservation, request.Encode())));
  return ReadReply<ScoreReply>(MessageType::kScoreObservationReply,
                               request.request_id);
}

StatusOr<StatsReply> FusionClient::Stats() {
  StatsRequest request;
  request.request_id = next_request_id_++;
  FUSER_RETURN_IF_ERROR(
      WriteAll(EncodeFrame(MessageType::kStats, request.Encode())));
  return ReadReply<StatsReply>(MessageType::kStatsReply, request.request_id);
}

StatusOr<std::vector<ScoreBatchReply>> FusionClient::PipelineScoreBatches(
    const std::string& method,
    const std::vector<std::vector<TripleId>>& batches) {
  std::vector<uint64_t> ids;
  ids.reserve(batches.size());
  std::string wire;
  for (const std::vector<TripleId>& triples : batches) {
    ScoreBatchRequest request;
    request.request_id = next_request_id_++;
    request.method = method;
    request.triples = triples;
    ids.push_back(request.request_id);
    wire += EncodeFrame(MessageType::kScoreBatch, request.Encode());
  }
  FUSER_RETURN_IF_ERROR(WriteAll(wire));
  std::vector<ScoreBatchReply> replies;
  replies.reserve(batches.size());
  for (uint64_t id : ids) {
    FUSER_ASSIGN_OR_RETURN(
        ScoreBatchReply reply,
        ReadReply<ScoreBatchReply>(MessageType::kScoreBatchReply, id));
    replies.push_back(std::move(reply));
  }
  return replies;
}

}  // namespace net
}  // namespace fuser
