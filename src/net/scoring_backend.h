// ScoringBackend: the one interface FusionServer serves.
//
// The server does not care whether queries are answered by a single
// FusionService or fan out across a ShardedFusionService — both adapters
// below implement the same four calls the wire protocol exposes. Each call
// pins exactly one published snapshot (RCU-style, like the services
// themselves) and reports its id, so a response can always be traced to
// the precise state that produced it even while a streaming writer keeps
// publishing. Implementations are const and thread-safe: every server
// worker thread calls them concurrently.
#ifndef FUSER_NET_SCORING_BACKEND_H_
#define FUSER_NET_SCORING_BACKEND_H_

#include <vector>

#include "common/status.h"
#include "serving/fusion_service.h"
#include "shard/sharded_service.h"

namespace fuser {
namespace net {

/// A scored value (or batch) plus the id of the snapshot it came from.
struct BackendScore {
  uint64_t snapshot_id = 0;
  double score = 0.0;
};

struct BackendBatch {
  uint64_t snapshot_id = 0;
  std::vector<double> scores;
};

/// What the kStats request reports about the serving state.
struct BackendInfo {
  uint64_t snapshot_id = 0;
  uint64_t dataset_version = 0;
  size_t num_triples = 0;
  size_t num_sources = 0;
  size_t num_shards = 0;  // 0 = unsharded
};

class ScoringBackend {
 public:
  virtual ~ScoringBackend() = default;

  virtual StatusOr<BackendScore> Score(const MethodSpec& spec,
                                       TripleId t) const = 0;
  virtual StatusOr<BackendBatch> ScoreBatch(
      const MethodSpec& spec, const std::vector<TripleId>& triples) const = 0;
  virtual StatusOr<BackendScore> ScoreObservation(
      const MethodSpec& spec, const AdHocObservation& observation) const = 0;
  virtual StatusOr<BackendInfo> Info() const = 0;
};

/// Adapter over a FusionService (one engine). Each call acquires the
/// latest servable snapshot and answers entirely from it.
class ServiceBackend : public ScoringBackend {
 public:
  /// `service` must outlive the backend.
  explicit ServiceBackend(const FusionService* service) : service_(service) {}

  StatusOr<BackendScore> Score(const MethodSpec& spec,
                               TripleId t) const override;
  StatusOr<BackendBatch> ScoreBatch(
      const MethodSpec& spec,
      const std::vector<TripleId>& triples) const override;
  StatusOr<BackendScore> ScoreObservation(
      const MethodSpec& spec,
      const AdHocObservation& observation) const override;
  StatusOr<BackendInfo> Info() const override;

 private:
  const FusionService* service_;
};

/// Adapter over a ShardedFusionService: same contract, one pinned
/// ShardedSnapshot per call (its id is the router's publication counter).
class ShardedServiceBackend : public ScoringBackend {
 public:
  /// `service` must outlive the backend; `num_shards` is reported by Info.
  ShardedServiceBackend(const ShardedFusionService* service,
                        size_t num_shards)
      : service_(service), num_shards_(num_shards) {}

  StatusOr<BackendScore> Score(const MethodSpec& spec,
                               TripleId t) const override;
  StatusOr<BackendBatch> ScoreBatch(
      const MethodSpec& spec,
      const std::vector<TripleId>& triples) const override;
  StatusOr<BackendScore> ScoreObservation(
      const MethodSpec& spec,
      const AdHocObservation& observation) const override;
  StatusOr<BackendInfo> Info() const override;

 private:
  const ShardedFusionService* service_;
  size_t num_shards_;
};

}  // namespace net
}  // namespace fuser

#endif  // FUSER_NET_SCORING_BACKEND_H_
