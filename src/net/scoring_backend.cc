#include "net/scoring_backend.h"

namespace fuser {
namespace net {

StatusOr<BackendScore> ServiceBackend::Score(const MethodSpec& spec,
                                             TripleId t) const {
  FUSER_ASSIGN_OR_RETURN(auto snapshot, service_->Acquire());
  FUSER_ASSIGN_OR_RETURN(double score, service_->Score(*snapshot, spec, t));
  return BackendScore{snapshot->id, score};
}

StatusOr<BackendBatch> ServiceBackend::ScoreBatch(
    const MethodSpec& spec, const std::vector<TripleId>& triples) const {
  FUSER_ASSIGN_OR_RETURN(auto snapshot, service_->Acquire());
  FUSER_ASSIGN_OR_RETURN(std::vector<double> scores,
                         service_->ScoreBatch(*snapshot, spec, triples));
  return BackendBatch{snapshot->id, std::move(scores)};
}

StatusOr<BackendScore> ServiceBackend::ScoreObservation(
    const MethodSpec& spec, const AdHocObservation& observation) const {
  FUSER_ASSIGN_OR_RETURN(auto snapshot, service_->Acquire());
  FUSER_ASSIGN_OR_RETURN(
      double score, service_->ScoreObservation(*snapshot, spec, observation));
  return BackendScore{snapshot->id, score};
}

StatusOr<BackendInfo> ServiceBackend::Info() const {
  FUSER_ASSIGN_OR_RETURN(auto snapshot, service_->Acquire());
  BackendInfo info;
  info.snapshot_id = snapshot->id;
  info.dataset_version = snapshot->dataset_version;
  info.num_triples = snapshot->num_triples;
  info.num_sources = snapshot->num_sources;
  info.num_shards = 0;
  return info;
}

StatusOr<BackendScore> ShardedServiceBackend::Score(const MethodSpec& spec,
                                                    TripleId t) const {
  FUSER_ASSIGN_OR_RETURN(auto snapshot, service_->Acquire());
  FUSER_ASSIGN_OR_RETURN(double score, service_->Score(*snapshot, spec, t));
  return BackendScore{snapshot->id, score};
}

StatusOr<BackendBatch> ShardedServiceBackend::ScoreBatch(
    const MethodSpec& spec, const std::vector<TripleId>& triples) const {
  FUSER_ASSIGN_OR_RETURN(auto snapshot, service_->Acquire());
  FUSER_ASSIGN_OR_RETURN(std::vector<double> scores,
                         service_->ScoreBatch(*snapshot, spec, triples));
  return BackendBatch{snapshot->id, std::move(scores)};
}

StatusOr<BackendScore> ShardedServiceBackend::ScoreObservation(
    const MethodSpec& spec, const AdHocObservation& observation) const {
  FUSER_ASSIGN_OR_RETURN(auto snapshot, service_->Acquire());
  FUSER_ASSIGN_OR_RETURN(
      double score, service_->ScoreObservation(*snapshot, spec, observation));
  return BackendScore{snapshot->id, score};
}

StatusOr<BackendInfo> ShardedServiceBackend::Info() const {
  FUSER_ASSIGN_OR_RETURN(auto snapshot, service_->Acquire());
  BackendInfo info;
  info.snapshot_id = snapshot->id;
  // Shards publish in lockstep under the router; shard 0's dataset version
  // stands in for the corpus (the global counter lives in the router).
  info.dataset_version =
      snapshot->shards.empty() ? 0 : snapshot->shards[0]->dataset_version;
  info.num_triples = snapshot->num_triples;
  info.num_sources = snapshot->num_sources;
  info.num_shards = num_shards_;
  return info;
}

}  // namespace net
}  // namespace fuser
