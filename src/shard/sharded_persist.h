// Manifest persistence for the sharded engine.
//
// ShardedFusionEngine::SaveSnapshot writes one ordinary snapshot file per
// shard (`<path>.shard<k>`, the full src/persist/ format: dataset, train
// mask, model, grouping, serving) plus a manifest at `path` tying them
// together. The manifest records everything the shard files cannot: the
// partition plan (shard count and domain-hash seed — loading under a
// different plan would silently misroute reads) and the per-shard
// local -> global triple id maps that let the router reassemble the global
// id space in its original order.
//
// Layout (little-endian, trailing FNV-1a checksum over everything before
// it):
//
//   magic "FUSRMANI" | u32 manifest_version | u32 snapshot_format_version
//   u32 num_shards | u64 hash_seed | u64 num_triples | u64 num_sources
//   per shard: u64 count | count x u32 global ids (local id order)
//   u64 checksum
//
// ReadShardManifest refuses a bad magic, an unknown manifest version, a
// snapshot format version other than the library's own (mixed-version
// stacks must not half-load), a corrupt checksum, and truncation.
#ifndef FUSER_SHARD_SHARDED_PERSIST_H_
#define FUSER_SHARD_SHARDED_PERSIST_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "model/triple.h"
#include "shard/partition.h"

namespace fuser {

inline constexpr uint32_t kShardManifestVersion = 1;

struct ShardManifest {
  /// persist::kSnapshotFormatVersion the shard files were written under.
  uint32_t snapshot_format_version = 0;
  ShardingOptions sharding;
  uint64_t num_triples = 0;
  uint64_t num_sources = 0;
  /// local_to_global[k][local] = global id of shard k's triple `local`.
  std::vector<std::vector<TripleId>> local_to_global;
};

/// Path of shard k's snapshot file for the manifest at `path`.
std::string ShardSnapshotPath(const std::string& path, size_t shard);

/// Writes the manifest atomically (tmp + rename).
Status WriteShardManifest(const std::string& path,
                          const ShardManifest& manifest);

/// Reads and fully validates a manifest.
StatusOr<ShardManifest> ReadShardManifest(const std::string& path);

}  // namespace fuser

#endif  // FUSER_SHARD_SHARDED_PERSIST_H_
