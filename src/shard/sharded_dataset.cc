#include "shard/sharded_dataset.h"

#include <utility>

#include "common/logging.h"

namespace fuser {

// ---- ShardMap / ShardMapBuilder ------------------------------------------

ShardLocation ShardMap::Get(size_t global) const {
  FUSER_CHECK_LT(global, size_);
  return chunks_[global >> kChunkBits]->entries[global & (kChunkSize - 1)];
}

void ShardMapBuilder::Append(ShardLocation location) {
  const size_t offset = size_ & (ShardMap::kChunkSize - 1);
  if (offset == 0) {
    chunks_.push_back(std::make_shared<ShardMap::Chunk>());
  }
  chunks_.back()->entries[offset] = location;
  ++size_;
}

ShardLocation ShardMapBuilder::Get(size_t global) const {
  FUSER_CHECK_LT(global, size_);
  return chunks_[global >> ShardMap::kChunkBits]
      ->entries[global & (ShardMap::kChunkSize - 1)];
}

std::shared_ptr<const ShardMap> ShardMapBuilder::Snapshot() const {
  auto map = std::make_shared<ShardMap>();
  map->chunks_.assign(chunks_.begin(), chunks_.end());
  map->size_ = size_;
  return map;
}

// ---- Key encoding --------------------------------------------------------

void EncodeTripleKey(const TripleView& triple, std::string* key) {
  key->clear();
  key->reserve(triple.subject.size() + triple.predicate.size() +
               triple.object.size() + 2);
  key->append(triple.subject);
  key->push_back('\x1f');
  key->append(triple.predicate);
  key->push_back('\x1f');
  key->append(triple.object);
}

// ---- ShardedCorpus -------------------------------------------------------

ShardedCorpus::ShardedCorpus(const ShardingOptions& options)
    : options_(options) {
  FUSER_CHECK(ValidateShardingOptions(options).ok())
      << "invalid ShardingOptions";
  shards_.reserve(options.num_shards);
  for (uint32_t k = 0; k < options.num_shards; ++k) {
    shards_.push_back(std::make_unique<Dataset>());
  }
  local_to_global_.resize(options.num_shards);
}

StatusOr<ShardedCorpus> ShardedCorpus::Partition(
    const Dataset& full, const ShardingOptions& options) {
  FUSER_RETURN_IF_ERROR(ValidateShardingOptions(options));
  if (!full.finalized()) {
    return Status::FailedPrecondition("Partition requires a finalized dataset");
  }
  ShardedCorpus corpus(options);
  for (SourceId s = 0; s < full.num_sources(); ++s) {
    corpus.AddSource(full.source_name(s));
  }
  for (TripleId t = 0; t < full.num_triples(); ++t) {
    const TripleId global =
        corpus.AddTriple(full.triple(t), full.domain_name(full.domain(t)));
    if (global != t) {
      return Status::InvalidArgument(
          "dataset contains duplicate triples; cannot partition");
    }
    const Label label = full.label(t);
    if (label != Label::kUnknown) {
      corpus.SetLabel(t, label == Label::kTrue);
    }
  }
  for (SourceId s = 0; s < full.num_sources(); ++s) {
    full.output(s).ForEach(
        [&](size_t t) { corpus.Provide(s, static_cast<TripleId>(t)); });
  }
  FUSER_RETURN_IF_ERROR(corpus.Finalize());
  return corpus;
}

StatusOr<ShardedCorpus> ShardedCorpus::FromShards(
    std::vector<std::unique_ptr<Dataset>> shards,
    const std::vector<std::vector<TripleId>>& local_to_global,
    const ShardingOptions& options) {
  FUSER_RETURN_IF_ERROR(ValidateShardingOptions(options));
  if (shards.size() != options.num_shards ||
      local_to_global.size() != shards.size()) {
    return Status::InvalidArgument(
        "shard count does not match the sharding options");
  }
  size_t total = 0;
  for (size_t k = 0; k < shards.size(); ++k) {
    if (shards[k] == nullptr || !shards[k]->finalized()) {
      return Status::InvalidArgument("missing or unfinalized shard dataset");
    }
    if (local_to_global[k].size() != shards[k]->num_triples()) {
      return Status::InvalidArgument(
          "shard id map does not match the shard's triple count");
    }
    total += shards[k]->num_triples();
  }

  ShardedCorpus corpus(options);
  corpus.shards_ = std::move(shards);

  // Source tables must be identical across shards (global == local ids).
  const Dataset& first = *corpus.shards_[0];
  for (size_t k = 1; k < corpus.shards_.size(); ++k) {
    const Dataset& other = *corpus.shards_[k];
    if (other.num_sources() != first.num_sources()) {
      return Status::InvalidArgument("shards disagree on the source table");
    }
    for (SourceId s = 0; s < first.num_sources(); ++s) {
      if (other.source_name(s) != first.source_name(s)) {
        return Status::InvalidArgument("shards disagree on the source table");
      }
    }
  }
  for (SourceId s = 0; s < first.num_sources(); ++s) {
    corpus.source_index_.emplace(first.source_name(s), s);
  }

  // Invert the per-shard maps into global order, checking bijectivity.
  std::vector<ShardLocation> locations(total);
  std::vector<bool> seen(total, false);
  for (size_t k = 0; k < corpus.shards_.size(); ++k) {
    for (TripleId local = 0; local < local_to_global[k].size(); ++local) {
      const TripleId global = local_to_global[k][local];
      if (global >= total || seen[global]) {
        return Status::InvalidArgument(
            "shard id maps do not form a bijection onto the global ids");
      }
      if (local > 0 && global <= local_to_global[k][local - 1]) {
        // The router assigns shard-local ids in global id order; a
        // non-monotone map cannot have come from SaveSnapshot.
        return Status::InvalidArgument(
            "shard id map is not increasing in global id order");
      }
      seen[global] = true;
      locations[global] = ShardLocation{static_cast<uint32_t>(k), local};
    }
  }
  corpus.index_.reserve(total);
  std::string key;
  for (size_t global = 0; global < total; ++global) {
    const ShardLocation loc = locations[global];
    EncodeTripleKey(corpus.shards_[loc.shard]->triple(loc.local), &key);
    if (corpus.InternGlobal(key, loc.shard, loc.local) !=
        static_cast<TripleId>(global)) {
      return Status::InvalidArgument("shards contain duplicate triples");
    }
  }
  return corpus;
}

SourceId ShardedCorpus::AddSource(std::string_view name) {
  const SourceId id = static_cast<SourceId>(source_index_.size());
  for (auto& shard : shards_) {
    const SourceId local = shard->AddSource(name);
    FUSER_CHECK_EQ(local, id);
  }
  source_index_.emplace(std::string(name), id);
  return id;
}

TripleId ShardedCorpus::InternGlobal(std::string_view key, uint32_t shard,
                                     TripleId local) {
  const TripleId global = static_cast<TripleId>(map_.size());
  auto [it, inserted] = index_.emplace(arena_.Intern(key), global);
  if (!inserted) return it->second;
  map_.Append(ShardLocation{shard, local});
  FUSER_CHECK_EQ(local_to_global_[shard].size(), local);
  local_to_global_[shard].push_back(global);
  return global;
}

TripleId ShardedCorpus::AddTriple(const TripleView& triple,
                                  std::string_view domain) {
  std::string key;
  EncodeTripleKey(triple, &key);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const uint32_t shard = ShardOfDomain(domain, options_);
  const TripleId local = shards_[shard]->AddTriple(triple, domain);
  return InternGlobal(key, shard, local);
}

void ShardedCorpus::Provide(SourceId source, TripleId global) {
  const ShardLocation loc = map_.Get(global);
  shards_[loc.shard]->Provide(source, loc.local);
}

void ShardedCorpus::SetLabel(TripleId global, bool is_true) {
  const ShardLocation loc = map_.Get(global);
  shards_[loc.shard]->SetLabel(loc.local, is_true);
}

Status ShardedCorpus::Finalize() {
  if (source_index_.empty()) {
    return Status::InvalidArgument("dataset has no sources");
  }
  if (map_.size() == 0) {
    return Status::InvalidArgument("dataset has no triples");
  }
  for (auto& shard : shards_) {
    FUSER_RETURN_IF_ERROR(shard->Finalize(/*allow_empty=*/true));
  }
  return Status::OK();
}

TripleId ShardedCorpus::Find(const TripleView& triple) const {
  std::string key;
  EncodeTripleKey(triple, &key);
  auto it = index_.find(key);
  return it == index_.end() ? kInvalidTriple : it->second;
}

StatusOr<RoutedBatch> ShardedCorpus::RouteBatch(
    const ObservationBatch& batch) const {
  const size_t num_shards = shards_.size();
  RoutedBatch routed;
  routed.per_shard.resize(num_shards);
  routed.dirty.assign(num_shards, false);
  routed.shard_new_counts.assign(num_shards, 0);

  // New source names, in the order ApplyBatch would intern them: explicit
  // registrations first, then first mentions in observation order.
  std::unordered_map<std::string, SourceId> pending_sources;
  auto note_source = [&](const std::string& name) {
    if (source_index_.find(name) != source_index_.end()) return;
    if (!pending_sources.emplace(name, 0).second) return;
    routed.new_sources.push_back(name);
  };
  for (const std::string& name : batch.register_sources) note_source(name);

  // Triples the batch itself introduces, keyed by encoded text; the value
  // is their index in routed.new_triples (global id = num_triples + index).
  std::unordered_map<std::string, size_t> pending_triples;
  std::string key;
  auto shard_of_triple = [&](const Triple& triple,
                             const std::string& domain,
                             bool create) -> int {
    EncodeTripleKey(triple, &key);
    auto it = index_.find(key);
    if (it != index_.end()) {
      return static_cast<int>(map_.Get(it->second).shard);
    }
    auto pending = pending_triples.find(key);
    if (pending != pending_triples.end()) {
      return static_cast<int>(routed.new_triples[pending->second].shard);
    }
    if (!create) return -1;
    // First mention: its domain decides the shard, exactly as ApplyBatch's
    // first mention decides the interned domain.
    const uint32_t shard = ShardOfDomain(domain, options_);
    pending_triples.emplace(key, routed.new_triples.size());
    routed.new_triples.push_back(RoutedBatch::NewTriple{key, shard});
    ++routed.shard_new_counts[shard];
    return static_cast<int>(shard);
  };

  for (const Observation& obs : batch.observations) {
    note_source(obs.source);
    const int shard = shard_of_triple(obs.triple, obs.domain, /*create=*/true);
    routed.per_shard[shard].observations.push_back(obs);
    routed.dirty[shard] = true;
  }
  for (const LabelUpdate& label : batch.labels) {
    const int shard =
        shard_of_triple(label.triple, /*domain=*/"", /*create=*/false);
    if (shard < 0) continue;  // unknown triple: ApplyBatch would skip it
    routed.per_shard[shard].labels.push_back(label);
    routed.dirty[shard] = true;
  }

  if (!routed.new_sources.empty()) {
    // Every shard registers the new names (in the same order), so
    // shard-local SourceIds stay equal to global ones.
    for (size_t k = 0; k < num_shards; ++k) {
      routed.per_shard[k].register_sources = routed.new_sources;
      routed.dirty[k] = true;
    }
  }
  return routed;
}

Status ShardedCorpus::CommitRoute(const RoutedBatch& routed,
                                  const std::vector<const DatasetDelta*>& deltas) {
  if (routed.per_shard.size() != shards_.size() ||
      deltas.size() != shards_.size()) {
    return Status::InvalidArgument("routed batch does not match this corpus");
  }
  std::vector<TripleId> next_local(shards_.size());
  for (size_t k = 0; k < shards_.size(); ++k) {
    if (!routed.dirty[k]) continue;
    if (deltas[k] == nullptr) {
      return Status::Internal("dirty shard has no ApplyBatch delta");
    }
    if (deltas[k]->new_triples.size() != routed.shard_new_counts[k]) {
      return Status::Internal(
          "shard interned a different number of new triples than routed");
    }
    next_local[k] = static_cast<TripleId>(deltas[k]->old_num_triples);
    for (SourceId s : deltas[k]->new_sources) {
      if (s >= shards_[k]->num_sources() ||
          shards_[k]->source_name(s) !=
              routed.new_sources[s - deltas[k]->old_num_sources]) {
        return Status::Internal("shard-local source ids diverged from global");
      }
    }
  }
  for (const RoutedBatch::NewTriple& nt : routed.new_triples) {
    const TripleId local = next_local[nt.shard]++;
    const TripleId global = InternGlobal(nt.key, nt.shard, local);
    if (global + 1 != map_.size()) {
      return Status::Internal("new triple was already present in the index");
    }
  }
  for (const std::string& name : routed.new_sources) {
    source_index_.emplace(name, static_cast<SourceId>(source_index_.size()));
  }
  return Status::OK();
}

}  // namespace fuser
