// ShardedCorpus: a corpus partitioned by domain hash into K independent
// Datasets, plus the global bookkeeping that makes the partition look like
// one dataset from the outside.
//
// The router (shard/sharded_engine.h) works in *global* triple ids — dense,
// assigned in first-mention order exactly as an unsharded Dataset would
// assign them. The corpus maintains:
//
//   * a global triple index (encoded triple text -> global id), keyed by
//     arena-interned strings so 10-100M keys cost one bump allocation each
//     instead of a std::string node;
//   * the global -> (shard, local id) map, stored in fixed-size chunks so a
//     published read-side ShardMap is a cheap copy of chunk pointers, not
//     an O(M) array copy (see ShardMap below for the concurrency story);
//   * the global source table: every source is registered in every shard,
//     in the same order, so shard-local SourceIds equal global ones and
//     per-shard quality/correlation statistics merge by plain index.
//
// Streaming follows a route/commit split: RouteBatch (const) partitions an
// ObservationBatch into per-shard batches and predicts the ids every new
// triple will get; after the shards applied their slices, CommitRoute
// extends the index and the map and validates the predictions against the
// per-shard deltas.
#ifndef FUSER_SHARD_SHARDED_DATASET_H_
#define FUSER_SHARD_SHARDED_DATASET_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/status.h"
#include "model/dataset.h"
#include "shard/partition.h"

namespace fuser {

/// Where a global triple lives: which shard, and its id there.
struct ShardLocation {
  uint32_t shard = 0;
  TripleId local = kInvalidTriple;
};

/// Immutable read-side view of the global -> (shard, local) map, pinned by
/// a ShardedSnapshot. Entries are stored in fixed 8192-entry chunks shared
/// with the writer: a chunk slot is written exactly once (when its global
/// id is assigned, before any snapshot covering it is published) and never
/// rewritten, so readers of a published map and the writer appending later
/// entries touch disjoint memory. Publication happens through the router's
/// snapshot mutex, which orders the slot writes before any reader's access.
class ShardMap {
 public:
  static constexpr size_t kChunkBits = 13;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;

  ShardLocation Get(size_t global) const;
  size_t size() const { return size_; }

 private:
  friend class ShardMapBuilder;
  struct Chunk {
    ShardLocation entries[kChunkSize];
  };

  std::vector<std::shared_ptr<const Chunk>> chunks_;
  size_t size_ = 0;
};

/// Writer-side append-only builder of the global -> (shard, local) map.
/// Snapshot() shares the chunk storage with the returned immutable view
/// (no entry copy); the writer keeps appending into the last chunk's
/// unpublished tail slots afterwards.
class ShardMapBuilder {
 public:
  void Append(ShardLocation location);
  ShardLocation Get(size_t global) const;
  size_t size() const { return size_; }
  std::shared_ptr<const ShardMap> Snapshot() const;

 private:
  std::vector<std::shared_ptr<ShardMap::Chunk>> chunks_;
  size_t size_ = 0;
};

/// RouteBatch's output: the batch split per shard, plus everything
/// CommitRoute needs to extend the global bookkeeping once the shards have
/// applied their slices.
struct RoutedBatch {
  struct NewTriple {
    std::string key;   // encoded triple text (see EncodeTripleKey)
    uint32_t shard = 0;
  };

  /// One (possibly empty) slice per shard.
  std::vector<ObservationBatch> per_shard;
  /// Shards whose slice is non-empty. New sources dirty every shard: each
  /// must register the names to keep SourceIds globally aligned.
  std::vector<bool> dirty;
  /// Source names the batch introduces, in global first-mention order
  /// (broadcast to every shard via ObservationBatch::register_sources).
  std::vector<std::string> new_sources;
  /// Triples the batch introduces, in batch scan order — which is global
  /// id order: new_triples[i] becomes global id (num_triples() + i).
  std::vector<NewTriple> new_triples;
  /// Predicted |delta.new_triples| per shard, validated by CommitRoute.
  std::vector<size_t> shard_new_counts;
};

/// Encodes a triple as a single index key (fields joined by 0x1f, which
/// cannot appear in a field without also changing the triple's text).
void EncodeTripleKey(const TripleView& triple, std::string* key);

class ShardedCorpus {
 public:
  /// Empty corpus (no shards); only useful as a StatusOr value slot or a
  /// move-assignment target.
  ShardedCorpus() = default;

  /// `options` must be valid (ValidateShardingOptions).
  explicit ShardedCorpus(const ShardingOptions& options);

  ShardedCorpus(const ShardedCorpus&) = delete;
  ShardedCorpus& operator=(const ShardedCorpus&) = delete;
  ShardedCorpus(ShardedCorpus&&) = default;
  ShardedCorpus& operator=(ShardedCorpus&&) = default;

  /// Partitions a finalized dataset: replays sources in id order and
  /// triples/labels/observations in global id order, so the corpus's
  /// global ids equal `full`'s TripleIds.
  static StatusOr<ShardedCorpus> Partition(const Dataset& full,
                                           const ShardingOptions& options);

  /// Reassembles a corpus from already-built shard datasets plus their
  /// local -> global id maps (warm start from a manifest). Validates that
  /// the maps form a bijection onto [0, total) and that every shard's
  /// source table matches shard 0's.
  static StatusOr<ShardedCorpus> FromShards(
      std::vector<std::unique_ptr<Dataset>> shards,
      const std::vector<std::vector<TripleId>>& local_to_global,
      const ShardingOptions& options);

  // ---- Construction (before Finalize), mirroring Dataset ----

  SourceId AddSource(std::string_view name);
  TripleId AddTriple(const TripleView& triple, std::string_view domain = {});
  void Provide(SourceId source, TripleId global);
  void SetLabel(TripleId global, bool is_true);
  Status Finalize();

  // ---- Topology ----

  size_t num_shards() const { return shards_.size(); }
  size_t num_triples() const { return map_.size(); }
  size_t num_sources() const { return source_index_.size(); }
  const ShardingOptions& options() const { return options_; }
  Dataset* mutable_shard(size_t k) { return shards_[k].get(); }
  const Dataset& shard(size_t k) const { return *shards_[k]; }

  ShardLocation Locate(TripleId global) const { return map_.Get(global); }

  /// Global id of shard k's triple `local` (inverse of Locate).
  TripleId GlobalOf(size_t k, TripleId local) const {
    return local_to_global_[k][local];
  }

  /// Global id of `triple`, or kInvalidTriple.
  TripleId Find(const TripleView& triple) const;

  /// Immutable map view for a published snapshot.
  std::shared_ptr<const ShardMap> SnapshotMap() const {
    return map_.Snapshot();
  }

  /// Per-shard local -> global id arrays (manifest persistence).
  const std::vector<std::vector<TripleId>>& LocalToGlobal() const {
    return local_to_global_;
  }

  // ---- Streaming (route/commit around per-shard ApplyBatch) ----

  /// Splits `batch` into per-shard slices without mutating the corpus.
  /// Labels of globally unknown triples are dropped (ApplyBatch would skip
  /// them); labels of triples the batch itself introduces follow the
  /// triple to its shard.
  StatusOr<RoutedBatch> RouteBatch(const ObservationBatch& batch) const;

  /// Extends the global index, the shard map, and the source table for a
  /// routed batch the shards have applied. `deltas[k]` is shard k's
  /// ApplyBatch delta (null for clean shards); the predicted new-triple
  /// counts must match exactly or the corpus state is declared corrupt.
  Status CommitRoute(const RoutedBatch& routed,
                     const std::vector<const DatasetDelta*>& deltas);

 private:
  TripleId InternGlobal(std::string_view key, uint32_t shard, TripleId local);

  ShardingOptions options_;
  std::vector<std::unique_ptr<Dataset>> shards_;
  StringArena arena_;
  /// Encoded triple key (arena-backed) -> global id.
  std::unordered_map<std::string_view, TripleId> index_;
  ShardMapBuilder map_;
  /// Inverse of map_: local_to_global_[k][local] = global id.
  std::vector<std::vector<TripleId>> local_to_global_;
  std::unordered_map<std::string, SourceId> source_index_;
};

}  // namespace fuser

#endif  // FUSER_SHARD_SHARDED_DATASET_H_
