// ShardedFusionService: concurrent point-query scoring over a sharded
// engine's published state.
//
// Same RCU-style contract as serving/FusionService, lifted to K shards:
// Acquire() pins one ShardedSnapshot — which itself pins one FusionSnapshot
// per shard plus the global -> (shard, local) routing map — and every query
// overload that takes a snapshot is answered from exactly those K shard
// snapshots, no matter what the writer does concurrently. A merged read can
// never mix shard states from different publishes.
//
// Queries fan out through per-shard FusionService facades and merge in
// request order; over the same data the answers are byte-identical to an
// unsharded FusionService at every K and thread count. Ad-hoc observations
// (global SourceIds) are scored by shard 0 — every shard holds the same
// router-merged global parameters, so any shard gives the same answer.
#ifndef FUSER_SHARD_SHARDED_SERVICE_H_
#define FUSER_SHARD_SHARDED_SERVICE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "serving/fusion_service.h"
#include "shard/sharded_engine.h"

namespace fuser {

class ShardedFusionService {
 public:
  /// `engine` must outlive the service. The service holds no mutable
  /// state: all methods are const and thread-safe.
  explicit ShardedFusionService(const ShardedFusionEngine* engine);

  /// Pins the engine's latest servable ShardedSnapshot (falling back to
  /// the latest published one before any materialization). Fails only
  /// before the engine's first Prepare.
  StatusOr<std::shared_ptr<const ShardedSnapshot>> Acquire() const;

  /// Posterior of global triple `t` under `spec`, answered from the shard
  /// snapshot pinned by `snapshot` for the shard that owns `t`.
  StatusOr<double> Score(const ShardedSnapshot& snapshot,
                         const MethodSpec& spec, TripleId t) const;

  /// Batched form: scatter per shard, gather in request order. Over all
  /// triples the result is byte-identical to the unsharded service's
  /// ScoreBatch (and to FusionEngine::Run) on the same data.
  StatusOr<std::vector<double>> ScoreBatch(
      const ShardedSnapshot& snapshot, const MethodSpec& spec,
      const std::vector<TripleId>& triples) const;

  /// Posterior of an ad-hoc observation (global SourceIds). Pattern-serving
  /// methods only, like the unsharded service.
  StatusOr<double> ScoreObservation(const ShardedSnapshot& snapshot,
                                    const MethodSpec& spec,
                                    const AdHocObservation& observation) const;

  /// Convenience overloads against the latest acquired snapshot.
  StatusOr<double> Score(const MethodSpec& spec, TripleId t) const;
  StatusOr<std::vector<double>> ScoreBatch(
      const MethodSpec& spec, const std::vector<TripleId>& triples) const;
  StatusOr<double> ScoreObservation(const MethodSpec& spec,
                                    const AdHocObservation& observation) const;

 private:
  const ShardedFusionEngine* engine_;
  /// One facade per shard; only their snapshot-taking overloads are used,
  /// so all routing state lives in the ShardedSnapshot being queried.
  std::vector<FusionService> services_;
};

}  // namespace fuser

#endif  // FUSER_SHARD_SHARDED_SERVICE_H_
