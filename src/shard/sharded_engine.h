// ShardedFusionEngine: K independent FusionEngines behind one router, with
// scores byte-identical to a single unsharded engine on the same data.
//
// Why this is exact rather than approximate: the paper's per-triple
// inference factors through (a) each triple's own observation pattern and
// (b) globally-estimated parameters — source quality, the cluster
// partition, and per-cluster joint statistics — all of which are ratios of
// *integer counts over training triples*. Counts over disjoint partitions
// of the corpus sum exactly, so the router
//
//   1. partitions triples by domain hash (shard/partition.h; scopes never
//      cross domains, so each shard's scope relation is the global one
//      restricted to its triples),
//   2. lets every shard count its own partition (quality counts, pairwise
//      correlation counts, joint-stats pattern counts),
//   3. merges the integer counts and finalizes them with the *same*
//      arithmetic the unsharded estimators use (FinalizeQualityFromCounts,
//      PairwiseCorrelationsFromCounts, MergeJointStatsStates), and
//   4. pushes the merged parameters back into every shard
//      (FusionEngine::AdoptParameters), which then scores its own triples
//      with the stock method implementations.
//
// Methods whose scores couple triples across the corpus (cosine,
// 3-estimates, LTM — iterative fixed points) cannot be stitched this way
// and return Unimplemented (FusionMethod::shardable).
//
// Streaming Update routes each micro-batch to the shards that own its
// domains; untouched shards pay one near-free AdoptParameters (a quality
// vector copy plus a snapshot publish) instead of re-running estimation,
// which is where the aggregate ingest speedup at K shards comes from
// (bench/bench_sharding.cc).
//
// Thread budget: the configured num_threads T is a host-wide budget, not
// per shard — each shard engine gets max(1, T/K) workers and the router
// fans out across shards with min(K, T) threads.
#ifndef FUSER_SHARD_SHARDED_ENGINE_H_
#define FUSER_SHARD_SHARDED_ENGINE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "shard/sharded_dataset.h"

namespace fuser {

/// One immutable published state of the sharded engine: one pinned
/// FusionSnapshot per shard plus the global -> (shard, local) map to route
/// reads. Readers pin this and every query is answered from exactly these
/// shard snapshots, no matter what the writer does concurrently.
struct ShardedSnapshot {
  uint64_t id = 0;
  size_t num_triples = 0;
  size_t num_sources = 0;
  std::shared_ptr<const ShardMap> map;
  std::vector<std::shared_ptr<const FusionSnapshot>> shards;

  ShardLocation Locate(TripleId global) const { return map->Get(global); }
};

class ShardedFusionEngine {
 public:
  /// Takes ownership of a finalized corpus (ShardedCorpus::Partition or
  /// build it directly). `options.num_threads` is the host-wide budget.
  static StatusOr<std::unique_ptr<ShardedFusionEngine>> Create(
      ShardedCorpus corpus, const EngineOptions& options);

  /// Convenience: partition `full` and create. `full` is only read during
  /// construction (the shards own copies).
  static StatusOr<std::unique_ptr<ShardedFusionEngine>> Create(
      const Dataset& full, const ShardingOptions& sharding,
      const EngineOptions& options);

  /// Estimates parameters from `train_mask` (over global triple ids):
  /// every shard counts its partition under its projected mask, the router
  /// merges and finalizes, and the merged quality is adopted everywhere.
  Status Prepare(const DynamicBitset& train_mask);

  /// Streaming ingestion, byte-identical to FusionEngine::Update on the
  /// unsharded corpus: routes the batch to the owning shards, merges their
  /// per-shard statistics, and either maintains the global model
  /// incrementally (cloned once, per-shard pattern deltas folded in) or
  /// invalidates it for a lazy rebuild under exactly the unsharded
  /// engine's conditions (new sources; any training change when clustering
  /// is enabled). Shards the batch does not touch only adopt the refreshed
  /// global quality.
  Status Update(const ObservationBatch& batch);

  /// Runs one shardable method on every shard and stitches the per-shard
  /// scores into global id order. Unimplemented for methods that are not
  /// shardable and for sketch-based clustering.
  StatusOr<FusionRun> Run(const MethodSpec& spec);
  StatusOr<std::vector<FusionRun>> RunAll(const std::vector<MethodSpec>& specs);

  /// Materializes serving state for `specs` on every shard and publishes
  /// one ShardedSnapshot pinning all K shard snapshots.
  StatusOr<std::shared_ptr<const ShardedSnapshot>> PublishSnapshot(
      const std::vector<MethodSpec>& specs);

  /// Latest published state / latest state with serving entries. Same
  /// reader contract as the unsharded engine. Thread-safe.
  std::shared_ptr<const ShardedSnapshot> CurrentSnapshot() const;
  std::shared_ptr<const ShardedSnapshot> CurrentServableSnapshot() const;

  /// Persists one snapshot file per shard (`<path>.shard<k>`) plus a
  /// checksummed manifest at `path` recording the partition plan and the
  /// per-shard local -> global id maps (see shard/sharded_persist.h).
  Status SaveSnapshot(const std::string& path) const;

  /// Rebuilds a sharded engine from SaveSnapshot output: validates the
  /// manifest (magic, versions, checksum), loads every shard snapshot
  /// (a missing shard file or a shard saved under a different snapshot
  /// format version fails the whole warm start), reassembles the global id
  /// maps, and warm-starts each shard engine. `options.num_threads` is the
  /// host budget; every other option comes from the saved state.
  static StatusOr<std::unique_ptr<ShardedFusionEngine>> WarmStart(
      const std::string& path, const EngineOptions& options);

  // ---- Introspection ----

  const ShardedCorpus& corpus() const { return corpus_; }
  size_t num_shards() const { return engines_.size(); }
  size_t num_triples() const { return corpus_.num_triples(); }
  FusionEngine* shard_engine(size_t k) { return engines_[k].get(); }
  const FusionEngine& shard_engine(size_t k) const { return *engines_[k]; }
  /// Router-merged global quality (equals the unsharded engine's).
  const std::vector<SourceQuality>& source_quality() const { return quality_; }
  /// Global training mask (what Prepare received, extended by Update).
  const DynamicBitset& train_mask() const { return train_mask_; }
  const EngineOptions& options() const { return options_; }
  size_t updates_applied() const { return updates_applied_; }
  size_t full_invalidations() const { return full_invalidations_; }

 private:
  ShardedFusionEngine(ShardedCorpus corpus, const EngineOptions& options);

  /// Builds the global model from merged per-shard counts and adopts it
  /// (with the merged quality) into every shard. No-op when already built.
  Status EnsureGlobalModel();
  /// Rejects specs the sharded router cannot serve exactly.
  Status CheckSpecs(const std::vector<MethodSpec>& specs,
                    bool* needs_model) const;
  /// Merges the cached per-shard quality counts into quality_.
  Status MergeQuality();
  /// Runs fn(k) for every shard, across min(K, T) router threads.
  void ForEachShard(const std::function<void(size_t)>& fn);
  /// Publishes the shards' current snapshots as one ShardedSnapshot.
  void PublishCurrent();
  /// Wraps `shards` in a ShardedSnapshot and installs it as the current
  /// snapshot (and as the serving snapshot too when `servable`).
  std::shared_ptr<const ShardedSnapshot> StoreSnapshot(
      std::vector<std::shared_ptr<const FusionSnapshot>> shards,
      bool servable);

  ShardedCorpus corpus_;
  EngineOptions options_;
  std::vector<std::unique_ptr<FusionEngine>> engines_;
  std::unique_ptr<ThreadPool> router_pool_;
  size_t router_threads_ = 1;
  bool prepared_ = false;
  DynamicBitset train_mask_;
  std::vector<SourceQuality> quality_;
  /// Per-shard quality (raw counts), cached so one dirty shard's update
  /// re-merges in O(K * S) instead of re-estimating clean shards.
  std::vector<std::vector<SourceQuality>> shard_quality_;
  std::shared_ptr<const CorrelationModel> model_;
  size_t updates_applied_ = 0;
  size_t full_invalidations_ = 0;

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const ShardedSnapshot> snapshot_;
  std::shared_ptr<const ShardedSnapshot> serving_snapshot_;
  uint64_t snapshots_published_ = 0;
};

}  // namespace fuser

#endif  // FUSER_SHARD_SHARDED_ENGINE_H_
