#include "shard/sharded_service.h"

#include <utility>

namespace fuser {

namespace {

Status CheckShardSnapshot(const ShardedSnapshot& snapshot, size_t shard) {
  if (shard >= snapshot.shards.size() || snapshot.shards[shard] == nullptr) {
    return Status::FailedPrecondition(
        "sharded snapshot does not pin a snapshot for the owning shard");
  }
  return Status::OK();
}

}  // namespace

ShardedFusionService::ShardedFusionService(const ShardedFusionEngine* engine)
    : engine_(engine) {
  services_.reserve(engine->num_shards());
  for (size_t k = 0; k < engine->num_shards(); ++k) {
    services_.emplace_back(&engine->shard_engine(k));
  }
}

StatusOr<std::shared_ptr<const ShardedSnapshot>> ShardedFusionService::Acquire()
    const {
  std::shared_ptr<const ShardedSnapshot> snapshot =
      engine_->CurrentServableSnapshot();
  if (snapshot == nullptr) snapshot = engine_->CurrentSnapshot();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition(
        "no published snapshot: call Prepare first");
  }
  return snapshot;
}

StatusOr<double> ShardedFusionService::Score(const ShardedSnapshot& snapshot,
                                             const MethodSpec& spec,
                                             TripleId t) const {
  if (t >= snapshot.num_triples) {
    return Status::InvalidArgument("triple id outside the snapshot");
  }
  const ShardLocation loc = snapshot.Locate(t);
  FUSER_RETURN_IF_ERROR(CheckShardSnapshot(snapshot, loc.shard));
  return services_[loc.shard].Score(*snapshot.shards[loc.shard], spec,
                                    loc.local);
}

StatusOr<std::vector<double>> ShardedFusionService::ScoreBatch(
    const ShardedSnapshot& snapshot, const MethodSpec& spec,
    const std::vector<TripleId>& triples) const {
  const size_t num_shards = snapshot.shards.size();
  // Scatter: per-shard local ids plus each query's position in the request.
  std::vector<std::vector<TripleId>> locals(num_shards);
  std::vector<std::vector<size_t>> positions(num_shards);
  for (size_t i = 0; i < triples.size(); ++i) {
    const TripleId t = triples[i];
    if (t >= snapshot.num_triples) {
      return Status::InvalidArgument("triple id outside the snapshot");
    }
    const ShardLocation loc = snapshot.Locate(t);
    locals[loc.shard].push_back(loc.local);
    positions[loc.shard].push_back(i);
  }
  // Gather: merge per-shard answers back into request order.
  std::vector<double> merged(triples.size(), 0.0);
  for (size_t k = 0; k < num_shards; ++k) {
    if (locals[k].empty()) continue;
    FUSER_RETURN_IF_ERROR(CheckShardSnapshot(snapshot, k));
    FUSER_ASSIGN_OR_RETURN(
        std::vector<double> scores,
        services_[k].ScoreBatch(*snapshot.shards[k], spec, locals[k]));
    for (size_t j = 0; j < scores.size(); ++j) {
      merged[positions[k][j]] = scores[j];
    }
  }
  return merged;
}

StatusOr<double> ShardedFusionService::ScoreObservation(
    const ShardedSnapshot& snapshot, const MethodSpec& spec,
    const AdHocObservation& observation) const {
  // Every shard holds the same global parameters; shard 0 answers for all.
  FUSER_RETURN_IF_ERROR(CheckShardSnapshot(snapshot, 0));
  return services_[0].ScoreObservation(*snapshot.shards[0], spec, observation);
}

StatusOr<double> ShardedFusionService::Score(const MethodSpec& spec,
                                             TripleId t) const {
  FUSER_ASSIGN_OR_RETURN(std::shared_ptr<const ShardedSnapshot> snapshot,
                         Acquire());
  return Score(*snapshot, spec, t);
}

StatusOr<std::vector<double>> ShardedFusionService::ScoreBatch(
    const MethodSpec& spec, const std::vector<TripleId>& triples) const {
  FUSER_ASSIGN_OR_RETURN(std::shared_ptr<const ShardedSnapshot> snapshot,
                         Acquire());
  return ScoreBatch(*snapshot, spec, triples);
}

StatusOr<double> ShardedFusionService::ScoreObservation(
    const MethodSpec& spec, const AdHocObservation& observation) const {
  FUSER_ASSIGN_OR_RETURN(std::shared_ptr<const ShardedSnapshot> snapshot,
                         Acquire());
  return ScoreObservation(*snapshot, spec, observation);
}

}  // namespace fuser
