// Partition plan for the sharded engine: which shard owns which domain.
//
// The paper's inference never crosses domain boundaries — scopes, pattern
// grouping, and joint statistics all condition within a domain — so
// assigning every triple of a domain to one shard preserves the scope
// relation exactly per shard, and shard-local sufficient statistics sum to
// the global ones. The assignment is a seeded hash of the domain *name*,
// so it is stable across processes, corpus orderings, and restarts (the
// persisted manifest records the seed and shard count and refuses a
// mismatch).
#ifndef FUSER_SHARD_PARTITION_H_
#define FUSER_SHARD_PARTITION_H_

#include <cstdint>
#include <string_view>

#include "common/status.h"

namespace fuser {

struct ShardingOptions {
  /// Number of engine shards K. 1 reproduces the unsharded engine behind
  /// the router interface.
  uint32_t num_shards = 1;
  /// Seed of the domain-name hash; changing it re-partitions the corpus.
  uint64_t hash_seed = 0x5368617264466E76ULL;  // "ShardFnv"
};

Status ValidateShardingOptions(const ShardingOptions& options);

/// Shard owning `domain` (byte-wise FNV-1a over the name, seeded).
uint32_t ShardOfDomain(std::string_view domain,
                       const ShardingOptions& options);

}  // namespace fuser

#endif  // FUSER_SHARD_PARTITION_H_
