#include "shard/sharded_engine.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "core/clustering.h"
#include "core/correlation.h"
#include "core/joint_stats.h"
#include "core/quality.h"
#include "persist/snapshot_io.h"
#include "shard/sharded_persist.h"

namespace fuser {

namespace {
const std::vector<TripleId> kNoChangedExisting;
}  // namespace

ShardedFusionEngine::ShardedFusionEngine(ShardedCorpus corpus,
                                         const EngineOptions& options)
    : corpus_(std::move(corpus)), options_(options) {
  const size_t num_shards = corpus_.num_shards();
  const size_t budget = ResolveNumThreads(options_.num_threads);
  EngineOptions shard_options = options_;
  shard_options.num_threads = std::max<size_t>(1, budget / num_shards);
  engines_.reserve(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    engines_.push_back(
        std::make_unique<FusionEngine>(corpus_.mutable_shard(k), shard_options));
  }
  router_threads_ = std::min(num_shards, budget);
  if (router_threads_ > 1) {
    router_pool_ = std::make_unique<ThreadPool>(router_threads_);
  }
  shard_quality_.resize(num_shards);
}

StatusOr<std::unique_ptr<ShardedFusionEngine>> ShardedFusionEngine::Create(
    ShardedCorpus corpus, const EngineOptions& options) {
  if (corpus.num_shards() == 0) {
    return Status::InvalidArgument("sharded corpus has no shards");
  }
  for (size_t k = 0; k < corpus.num_shards(); ++k) {
    if (!corpus.shard(k).finalized()) {
      return Status::FailedPrecondition(
          "sharded corpus must be finalized before engine creation");
    }
  }
  return std::unique_ptr<ShardedFusionEngine>(
      new ShardedFusionEngine(std::move(corpus), options));
}

StatusOr<std::unique_ptr<ShardedFusionEngine>> ShardedFusionEngine::Create(
    const Dataset& full, const ShardingOptions& sharding,
    const EngineOptions& options) {
  FUSER_ASSIGN_OR_RETURN(ShardedCorpus corpus,
                         ShardedCorpus::Partition(full, sharding));
  return Create(std::move(corpus), options);
}

void ShardedFusionEngine::ForEachShard(const std::function<void(size_t)>& fn) {
  const size_t num_shards = engines_.size();
  if (router_pool_ == nullptr || num_shards <= 1) {
    for (size_t k = 0; k < num_shards; ++k) fn(k);
    return;
  }
  ParallelForOptions options;
  options.pool = router_pool_.get();
  ParallelFor(num_shards, router_threads_, fn, options);
}

Status ShardedFusionEngine::MergeQuality() {
  std::vector<SourceQuality> merged = shard_quality_[0];
  for (size_t k = 1; k < shard_quality_.size(); ++k) {
    FUSER_RETURN_IF_ERROR(MergeQualityCounts(&merged, shard_quality_[k]));
  }
  FUSER_RETURN_IF_ERROR(
      FinalizeQualityFromCounts(options_.model.ToQualityOptions(), &merged));
  quality_ = std::move(merged);
  return Status::OK();
}

Status ShardedFusionEngine::Prepare(const DynamicBitset& train_mask) {
  if (train_mask.size() != corpus_.num_triples()) {
    return Status::InvalidArgument(
        "train mask size does not match the corpus");
  }
  const size_t num_shards = engines_.size();
  std::vector<DynamicBitset> shard_masks;
  shard_masks.reserve(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    shard_masks.emplace_back(corpus_.shard(k).num_triples());
  }
  train_mask.ForEach([&](size_t global) {
    const ShardLocation loc = corpus_.Locate(static_cast<TripleId>(global));
    shard_masks[loc.shard].Set(loc.local);
  });

  std::vector<Status> statuses(num_shards);
  ForEachShard(
      [&](size_t k) { statuses[k] = engines_[k]->Prepare(shard_masks[k]); });
  for (const Status& s : statuses) FUSER_RETURN_IF_ERROR(s);

  for (size_t k = 0; k < num_shards; ++k) {
    shard_quality_[k] = engines_[k]->source_quality();
  }
  FUSER_RETURN_IF_ERROR(MergeQuality());
  model_ = nullptr;
  for (size_t k = 0; k < num_shards; ++k) {
    FUSER_RETURN_IF_ERROR(
        engines_[k]->AdoptParameters(quality_, nullptr, kNoChangedExisting));
  }
  train_mask_ = train_mask;
  prepared_ = true;
  PublishCurrent();
  return Status::OK();
}

Status ShardedFusionEngine::Update(const ObservationBatch& batch) {
  if (!prepared_) {
    return Status::FailedPrecondition("call Prepare before Update");
  }
  FUSER_ASSIGN_OR_RETURN(RoutedBatch routed, corpus_.RouteBatch(batch));
  const size_t num_shards = engines_.size();

  // New sources are not covered by the current clustering, so pattern
  // deltas against it would be meaningless (and their provider masks
  // unrepresentable) — the model is invalidated below anyway.
  const CorrelationModel* delta_model =
      routed.new_sources.empty() ? model_.get() : nullptr;

  std::vector<ShardUpdateResult> results(num_shards);
  std::vector<Status> statuses(num_shards);
  std::vector<char> applied(num_shards, 0);
  ForEachShard([&](size_t k) {
    if (!routed.dirty[k]) return;
    StatusOr<ShardUpdateResult> result =
        engines_[k]->ApplyShardBatch(routed.per_shard[k], delta_model);
    if (!result.ok()) {
      statuses[k] = result.status();
      return;
    }
    results[k] = std::move(result).value();
    applied[k] = 1;
  });
  for (const Status& s : statuses) FUSER_RETURN_IF_ERROR(s);

  std::vector<const DatasetDelta*> deltas(num_shards, nullptr);
  for (size_t k = 0; k < num_shards; ++k) {
    if (applied[k]) deltas[k] = &results[k].delta;
  }
  FUSER_RETURN_IF_ERROR(corpus_.CommitRoute(routed, deltas));
  ++updates_applied_;

  // Extend the global training mask exactly as the shards extended theirs.
  train_mask_.Resize(corpus_.num_triples());
  bool training_changed = false;
  for (size_t k = 0; k < num_shards; ++k) {
    if (!applied[k]) continue;
    training_changed |= results[k].training_changed;
    for (const auto& change : results[k].delta.label_changes) {
      if (change.second == Label::kUnknown) {
        train_mask_.Set(corpus_.GlobalOf(k, change.first));
      }
    }
    shard_quality_[k] = std::move(results[k].shard_quality);
  }
  FUSER_RETURN_IF_ERROR(MergeQuality());

  // Adopts the merged quality with no model into every shard; the model is
  // rebuilt lazily by the next caller that needs it.
  auto adopt_no_model = [&]() -> Status {
    model_ = nullptr;
    for (size_t k = 0; k < num_shards; ++k) {
      FUSER_RETURN_IF_ERROR(
          engines_[k]->AdoptParameters(quality_, nullptr, kNoChangedExisting));
    }
    return Status::OK();
  };

  if (model_ == nullptr) {
    FUSER_RETURN_IF_ERROR(adopt_no_model());
    PublishCurrent();
    return Status::OK();
  }

  // Same invalidation conditions as FusionEngine::Update: the cluster
  // partition can change with new sources, and with clustering enabled any
  // training change can re-cluster.
  if (!routed.new_sources.empty() ||
      (options_.model.enable_clustering && training_changed)) {
    ++full_invalidations_;
    FUSER_RETURN_IF_ERROR(adopt_no_model());
    PublishCurrent();
    return Status::OK();
  }

  // Incremental path: clone the global model once, fold every dirty
  // shard's exact pattern-count deltas into the clone, adopt everywhere.
  StatusOr<CorrelationModel> cloned = CloneCorrelationModel(*model_);
  if (!cloned.ok()) {
    if (cloned.status().code() == StatusCode::kUnimplemented) {
      ++full_invalidations_;
      FUSER_RETURN_IF_ERROR(adopt_no_model());
      PublishCurrent();
      return Status::OK();
    }
    FUSER_RETURN_IF_ERROR(adopt_no_model());
    PublishCurrent();
    return cloned.status();
  }
  auto next = std::make_shared<CorrelationModel>(std::move(cloned).value());
  next->source_quality = quality_;
  Status stats_status = Status::OK();
  for (size_t k = 0; k < num_shards && stats_status.ok(); ++k) {
    if (!applied[k]) continue;
    const auto& cluster_deltas = results[k].cluster_deltas;
    for (size_t c = 0; c < cluster_deltas.size() && stats_status.ok(); ++c) {
      if (cluster_deltas[c].empty()) continue;
      stats_status = next->cluster_stats[c]->ApplyPatternDeltas(cluster_deltas[c]);
    }
  }
  if (!stats_status.ok()) {
    if (stats_status.code() == StatusCode::kUnimplemented) {
      ++full_invalidations_;
      FUSER_RETURN_IF_ERROR(adopt_no_model());
      PublishCurrent();
      return Status::OK();
    }
    FUSER_RETURN_IF_ERROR(adopt_no_model());
    PublishCurrent();
    return stats_status;
  }
  model_ = std::move(next);
  for (size_t k = 0; k < num_shards; ++k) {
    FUSER_RETURN_IF_ERROR(engines_[k]->AdoptParameters(
        quality_, model_,
        applied[k] ? results[k].changed_existing : kNoChangedExisting));
  }
  PublishCurrent();
  return Status::OK();
}

Status ShardedFusionEngine::EnsureGlobalModel() {
  if (model_ != nullptr) return Status::OK();
  const ModelOptions& mo = options_.model;
  const size_t num_sources = corpus_.num_sources();
  const size_t num_shards = engines_.size();

  SourceClustering clustering;
  if (!mo.enable_clustering) {
    FUSER_ASSIGN_OR_RETURN(clustering, SingleClusterOf(num_sources));
  } else if (mo.clustering.use_sketch) {
    return Status::Unimplemented(
        "sketch-based clustering is not supported with sharding (merged "
        "exact pairwise counts are required for byte-identical clusters)");
  } else {
    std::vector<SourceId> sources(num_sources);
    std::iota(sources.begin(), sources.end(), SourceId{0});
    PairwiseCounts merged;
    for (size_t k = 0; k < num_shards; ++k) {
      FUSER_ASSIGN_OR_RETURN(
          PairwiseCounts counts,
          ComputePairwiseCounts(corpus_.shard(k), engines_[k]->train_mask(),
                                sources));
      if (k == 0) {
        merged = std::move(counts);
      } else {
        FUSER_RETURN_IF_ERROR(MergePairwiseCounts(&merged, counts));
      }
    }
    FUSER_ASSIGN_OR_RETURN(
        std::vector<PairwiseCorrelation> pairs,
        PairwiseCorrelationsFromCounts(merged, mo.ToJointStatsOptions()));
    FUSER_ASSIGN_OR_RETURN(
        clustering, ClusterSourcesFromPairs(num_sources, pairs, mo.clustering));
  }

  CorrelationModel model;
  model.source_quality = quality_;
  model.clustering = std::move(clustering);
  model.alpha = mo.alpha;
  model.use_scopes = mo.use_scopes;
  model.cluster_stats.reserve(model.clustering.clusters.size());
  for (const std::vector<SourceId>& cluster : model.clustering.clusters) {
    std::vector<EmpiricalJointStatsState> states;
    states.reserve(num_shards);
    for (size_t k = 0; k < num_shards; ++k) {
      FUSER_ASSIGN_OR_RETURN(
          std::unique_ptr<EmpiricalJointStats> stats,
          EmpiricalJointStats::Create(corpus_.shard(k),
                                      engines_[k]->train_mask(), cluster,
                                      mo.ToJointStatsOptions()));
      states.push_back(stats->ExportState());
    }
    FUSER_ASSIGN_OR_RETURN(EmpiricalJointStatsState merged_state,
                           MergeJointStatsStates(states));
    FUSER_ASSIGN_OR_RETURN(std::unique_ptr<EmpiricalJointStats> provider,
                           EmpiricalJointStats::FromState(merged_state));
    model.cluster_stats.push_back(std::move(provider));
  }

  model_ = std::make_shared<const CorrelationModel>(std::move(model));
  for (size_t k = 0; k < num_shards; ++k) {
    FUSER_RETURN_IF_ERROR(
        engines_[k]->AdoptParameters(quality_, model_, kNoChangedExisting));
  }
  PublishCurrent();
  return Status::OK();
}

Status ShardedFusionEngine::CheckSpecs(const std::vector<MethodSpec>& specs,
                                       bool* needs_model) const {
  *needs_model = false;
  for (const MethodSpec& spec : specs) {
    const FusionMethod* method = MethodRegistry::Global().Find(spec.kind);
    if (method == nullptr) {
      return Status::Unimplemented("method kind is not registered: " +
                                   spec.Name());
    }
    if (!method->shardable()) {
      return Status::Unimplemented(
          "method '" + std::string(method->id()) +
          "' couples triples across the corpus and cannot run sharded");
    }
    if (method->needs_model() || method->uses_pattern_pipeline()) {
      *needs_model = true;
    }
  }
  if (*needs_model && options_.model.enable_clustering &&
      options_.model.clustering.use_sketch) {
    return Status::Unimplemented(
        "sketch-based clustering is not supported with sharding (merged "
        "exact pairwise counts are required for byte-identical clusters)");
  }
  return Status::OK();
}

StatusOr<std::vector<FusionRun>> ShardedFusionEngine::RunAll(
    const std::vector<MethodSpec>& specs) {
  if (!prepared_) {
    return Status::FailedPrecondition("call Prepare before Run");
  }
  bool needs_model = false;
  FUSER_RETURN_IF_ERROR(CheckSpecs(specs, &needs_model));
  if (needs_model) {
    FUSER_RETURN_IF_ERROR(EnsureGlobalModel());
  }

  const size_t num_shards = engines_.size();
  std::vector<std::vector<FusionRun>> shard_runs(num_shards);
  std::vector<Status> statuses(num_shards);
  ForEachShard([&](size_t k) {
    StatusOr<std::vector<FusionRun>> runs = engines_[k]->RunAll(specs);
    if (!runs.ok()) {
      statuses[k] = runs.status();
      return;
    }
    shard_runs[k] = std::move(runs).value();
  });
  for (const Status& s : statuses) FUSER_RETURN_IF_ERROR(s);

  const size_t num_triples = corpus_.num_triples();
  std::vector<FusionRun> runs(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    FusionRun& run = runs[i];
    run.spec = specs[i];
    run.threshold = shard_runs[0][i].threshold;
    run.dataset_version = 0;  // stitched run: no single dataset version
    run.scores.resize(num_triples);
    double seconds = 0.0;
    for (size_t k = 0; k < num_shards; ++k) {
      seconds += shard_runs[k][i].seconds;
    }
    run.seconds = seconds;
  }
  for (size_t g = 0; g < num_triples; ++g) {
    const ShardLocation loc = corpus_.Locate(static_cast<TripleId>(g));
    for (size_t i = 0; i < specs.size(); ++i) {
      runs[i].scores[g] = shard_runs[loc.shard][i].scores[loc.local];
    }
  }
  return runs;
}

StatusOr<FusionRun> ShardedFusionEngine::Run(const MethodSpec& spec) {
  FUSER_ASSIGN_OR_RETURN(std::vector<FusionRun> runs, RunAll({spec}));
  return std::move(runs.front());
}

StatusOr<std::shared_ptr<const ShardedSnapshot>>
ShardedFusionEngine::PublishSnapshot(const std::vector<MethodSpec>& specs) {
  if (!prepared_) {
    return Status::FailedPrecondition("call Prepare before PublishSnapshot");
  }
  bool needs_model = false;
  FUSER_RETURN_IF_ERROR(CheckSpecs(specs, &needs_model));
  if (needs_model) {
    FUSER_RETURN_IF_ERROR(EnsureGlobalModel());
  }

  const size_t num_shards = engines_.size();
  std::vector<std::shared_ptr<const FusionSnapshot>> shards(num_shards);
  std::vector<Status> statuses(num_shards);
  ForEachShard([&](size_t k) {
    StatusOr<std::shared_ptr<const FusionSnapshot>> snapshot =
        engines_[k]->PublishSnapshot(specs);
    if (!snapshot.ok()) {
      statuses[k] = snapshot.status();
      return;
    }
    shards[k] = std::move(snapshot).value();
  });
  for (const Status& s : statuses) FUSER_RETURN_IF_ERROR(s);
  return StoreSnapshot(std::move(shards), /*servable=*/!specs.empty());
}

std::shared_ptr<const ShardedSnapshot> ShardedFusionEngine::StoreSnapshot(
    std::vector<std::shared_ptr<const FusionSnapshot>> shards, bool servable) {
  auto snapshot = std::make_shared<ShardedSnapshot>();
  snapshot->num_triples = corpus_.num_triples();
  snapshot->num_sources = corpus_.num_sources();
  snapshot->map = corpus_.SnapshotMap();
  snapshot->shards = std::move(shards);
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot->id = ++snapshots_published_;
  snapshot_ = snapshot;
  if (servable) serving_snapshot_ = snapshot;
  return snapshot;
}

void ShardedFusionEngine::PublishCurrent() {
  std::vector<std::shared_ptr<const FusionSnapshot>> shards;
  shards.reserve(engines_.size());
  for (const auto& engine : engines_) {
    shards.push_back(engine->CurrentSnapshot());
  }
  StoreSnapshot(std::move(shards), /*servable=*/false);
}

std::shared_ptr<const ShardedSnapshot> ShardedFusionEngine::CurrentSnapshot()
    const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

std::shared_ptr<const ShardedSnapshot>
ShardedFusionEngine::CurrentServableSnapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return serving_snapshot_;
}

Status ShardedFusionEngine::SaveSnapshot(const std::string& path) const {
  for (size_t k = 0; k < engines_.size(); ++k) {
    FUSER_RETURN_IF_ERROR(engines_[k]->SaveSnapshot(ShardSnapshotPath(path, k)));
  }
  ShardManifest manifest;
  manifest.snapshot_format_version = kSnapshotFormatVersion;
  manifest.sharding = corpus_.options();
  manifest.num_triples = corpus_.num_triples();
  manifest.num_sources = corpus_.num_sources();
  manifest.local_to_global = corpus_.LocalToGlobal();
  return WriteShardManifest(path, manifest);
}

StatusOr<std::unique_ptr<ShardedFusionEngine>> ShardedFusionEngine::WarmStart(
    const std::string& path, const EngineOptions& options) {
  FUSER_ASSIGN_OR_RETURN(ShardManifest manifest, ReadShardManifest(path));
  const size_t num_shards = manifest.sharding.num_shards;

  std::vector<LoadedSnapshot> loaded;
  loaded.reserve(num_shards);
  std::vector<std::unique_ptr<Dataset>> datasets;
  datasets.reserve(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    FUSER_ASSIGN_OR_RETURN(LoadedSnapshot shard,
                           LoadSnapshot(ShardSnapshotPath(path, k)));
    // The corpus owns the dataset; the shard engine's WarmStart skips its
    // pointer-identity check for a moved-out dataset (the object itself is
    // unmoved, so the snapshot's internal pointers stay valid).
    datasets.push_back(std::move(shard.dataset));
    loaded.push_back(std::move(shard));
  }

  FUSER_ASSIGN_OR_RETURN(
      ShardedCorpus corpus,
      ShardedCorpus::FromShards(std::move(datasets), manifest.local_to_global,
                                manifest.sharding));
  if (corpus.num_triples() != manifest.num_triples ||
      corpus.num_sources() != manifest.num_sources) {
    return Status::InvalidArgument(
        "shard manifest totals do not match the shard snapshots: " + path);
  }

  std::unique_ptr<ShardedFusionEngine> engine(
      new ShardedFusionEngine(std::move(corpus), options));
  for (size_t k = 0; k < num_shards; ++k) {
    FUSER_RETURN_IF_ERROR(engine->engines_[k]->WarmStart(loaded[k]));
  }

  // The saved options govern all estimation; the thread budget stays the
  // caller's (per-shard budgets were already applied at construction).
  engine->options_ = engine->engines_[0]->options();
  engine->options_.num_threads = options.num_threads;

  engine->train_mask_ = DynamicBitset(engine->corpus_.num_triples());
  for (size_t k = 0; k < num_shards; ++k) {
    const size_t shard = k;
    engine->engines_[k]->train_mask().ForEach([&](size_t local) {
      engine->train_mask_.Set(engine->corpus_.GlobalOf(
          shard, static_cast<TripleId>(local)));
    });
    FUSER_ASSIGN_OR_RETURN(
        engine->shard_quality_[k],
        EstimateSourceQuality(engine->corpus_.shard(k),
                              engine->engines_[k]->train_mask(),
                              engine->options_.model.ToQualityOptions()));
  }
  FUSER_RETURN_IF_ERROR(engine->MergeQuality());

  // Every shard saved the same adopted global parameters; shard 0's model
  // object becomes the router's (values are identical across shards).
  engine->model_ = engine->engines_[0]->CurrentSnapshot()->model;
  engine->prepared_ = true;

  std::vector<std::shared_ptr<const FusionSnapshot>> current;
  std::vector<std::shared_ptr<const FusionSnapshot>> servable;
  current.reserve(num_shards);
  servable.reserve(num_shards);
  bool all_servable = true;
  for (size_t k = 0; k < num_shards; ++k) {
    current.push_back(engine->engines_[k]->CurrentSnapshot());
    auto shard_servable = engine->engines_[k]->CurrentServableSnapshot();
    if (shard_servable == nullptr) {
      all_servable = false;
    } else {
      servable.push_back(std::move(shard_servable));
    }
  }
  if (all_servable) {
    engine->StoreSnapshot(std::move(servable), /*servable=*/true);
  } else {
    engine->StoreSnapshot(std::move(current), /*servable=*/false);
  }
  return engine;
}

}  // namespace fuser
