#include "shard/partition.h"

namespace fuser {

Status ValidateShardingOptions(const ShardingOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.num_shards > 1024) {
    return Status::InvalidArgument("num_shards must be <= 1024");
  }
  return Status::OK();
}

uint32_t ShardOfDomain(std::string_view domain,
                       const ShardingOptions& options) {
  // Byte-wise FNV-1a (not the chunked HashBytes64): the per-domain cost is
  // negligible and the simple form keeps the partition trivially
  // re-implementable by external tooling reading the manifest.
  uint64_t h = options.hash_seed;
  for (char c : domain) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return static_cast<uint32_t>(h % options.num_shards);
}

}  // namespace fuser
