#include "shard/sharded_persist.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "persist/binary_io.h"
#include "persist/snapshot_io.h"

namespace fuser {
namespace {

constexpr char kMagic[8] = {'F', 'U', 'S', 'R', 'M', 'A', 'N', 'I'};

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    return Status::IoError("cannot open for writing: " + tmp);
  }
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), out) != bytes.size()) {
    std::fclose(out);
    std::remove(tmp.c_str());
    return Status::IoError("short write: " + tmp);
  }
  if (std::fclose(out) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("close failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

}  // namespace

std::string ShardSnapshotPath(const std::string& path, size_t shard) {
  return path + ".shard" + std::to_string(shard);
}

Status WriteShardManifest(const std::string& path,
                          const ShardManifest& manifest) {
  if (manifest.local_to_global.size() != manifest.sharding.num_shards) {
    return Status::InvalidArgument(
        "manifest shard count does not match its id maps");
  }
  persist::ByteSink sink;
  sink.WriteRaw(kMagic, sizeof(kMagic));
  sink.WriteU32(kShardManifestVersion);
  sink.WriteU32(manifest.snapshot_format_version);
  sink.WriteU32(manifest.sharding.num_shards);
  sink.WriteU64(manifest.sharding.hash_seed);
  sink.WriteU64(manifest.num_triples);
  sink.WriteU64(manifest.num_sources);
  for (const std::vector<TripleId>& map : manifest.local_to_global) {
    sink.WriteU64(map.size());
    for (TripleId global : map) sink.WriteU32(global);
  }
  sink.WriteU64(persist::Checksum64(sink.data().data(), sink.size()));
  return WriteFileAtomic(path, sink.data());
}

StatusOr<ShardManifest> ReadShardManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::IoError("cannot open shard manifest: " + path);
  }
  const std::streamoff size = in.tellg();
  if (size < 0) {
    return Status::IoError("cannot stat shard manifest: " + path);
  }
  std::string bytes(static_cast<size_t>(size), '\0');
  in.seekg(0);
  if (!bytes.empty()) in.read(&bytes[0], size);
  if (!in) {
    return Status::IoError("cannot read shard manifest: " + path);
  }

  if (bytes.size() < sizeof(kMagic) + sizeof(uint64_t) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a shard manifest: " + path);
  }
  const size_t payload_size = bytes.size() - sizeof(uint64_t);
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, bytes.data() + payload_size,
              sizeof(stored_checksum));
  if (persist::Checksum64(bytes.data(), payload_size) != stored_checksum) {
    return Status::InvalidArgument("shard manifest checksum mismatch: " +
                                   path);
  }

  persist::ByteSource source(bytes.data() + sizeof(kMagic),
                             payload_size - sizeof(kMagic));
  ShardManifest manifest;
  uint32_t manifest_version = 0;
  FUSER_RETURN_IF_ERROR(source.ReadU32(&manifest_version));
  if (manifest_version != kShardManifestVersion) {
    return Status::InvalidArgument(
        "unsupported shard manifest version " +
        std::to_string(manifest_version));
  }
  FUSER_RETURN_IF_ERROR(source.ReadU32(&manifest.snapshot_format_version));
  if (manifest.snapshot_format_version != kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "shard snapshot format version " +
        std::to_string(manifest.snapshot_format_version) +
        " does not match this library's " +
        std::to_string(kSnapshotFormatVersion));
  }
  FUSER_RETURN_IF_ERROR(source.ReadU32(&manifest.sharding.num_shards));
  FUSER_RETURN_IF_ERROR(ValidateShardingOptions(manifest.sharding));
  FUSER_RETURN_IF_ERROR(source.ReadU64(&manifest.sharding.hash_seed));
  FUSER_RETURN_IF_ERROR(source.ReadU64(&manifest.num_triples));
  FUSER_RETURN_IF_ERROR(source.ReadU64(&manifest.num_sources));
  manifest.local_to_global.resize(manifest.sharding.num_shards);
  uint64_t total = 0;
  for (std::vector<TripleId>& map : manifest.local_to_global) {
    size_t count = 0;
    FUSER_RETURN_IF_ERROR(source.ReadCount(sizeof(uint32_t), &count));
    map.resize(count);
    FUSER_RETURN_IF_ERROR(source.ReadU32Array(map.data(), count));
    total += count;
  }
  if (!source.exhausted()) {
    return Status::InvalidArgument("shard manifest has trailing bytes: " +
                                   path);
  }
  if (total != manifest.num_triples) {
    return Status::InvalidArgument(
        "shard manifest triple counts are inconsistent: " + path);
  }
  return manifest;
}

}  // namespace fuser
